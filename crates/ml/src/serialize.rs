//! A small binary codec for trained-model snapshots.
//!
//! The experiment engine's `ModelCache` stores trained classifiers as
//! byte blobs keyed by their training inputs. The vendored `serde` subset
//! has no derive support for deserializing trait objects, so models
//! serialize themselves through this explicit writer/reader pair instead:
//! little-endian `u64` words, `f64` via [`f64::to_bits`] (lossless, so a
//! cache round trip reproduces classifications byte-for-byte), and
//! length-prefixed byte strings.
//!
//! Blobs only ever travel through the in-process cache, so a malformed
//! blob is a bug, not an input error — the reader panics with a message
//! rather than threading `Result`s through every model.
//!
//! Model blobs are prefixed with [`CODEC_VERSION`]. Version 2 added the
//! reduced-precision primitives (`f32` via [`f32::to_bits`], raw `i8`
//! strings, [`crate::linalg::Matrix32`]) for the `lowp` inference
//! classifiers; version 1 (the unprefixed seed-era format) is no longer
//! readable — the cache is in-process, so old blobs cannot outlive the
//! binary that wrote them.

use crate::linalg::{Matrix, Matrix32};

/// Version byte prefixed to every model blob. Bumped to 2 when the
/// low-precision (`f32` / int8) primitives were added.
pub const CODEC_VERSION: u8 = 2;

/// Serializer accumulating a little-endian byte buffer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its bit pattern (lossless round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Writes a length-prefixed byte string (a nested blob).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its bit pattern (lossless round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Writes a length-prefixed `i8` slice (int8 quantized codes).
    pub fn put_i8s(&mut self, vs: &[i8]) {
        self.put_usize(vs.len());
        self.buf.extend(vs.iter().map(|&v| v as u8));
    }

    /// Writes a matrix (shape then data).
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows);
        self.put_usize(m.cols);
        for &v in &m.data {
            self.put_f64(v);
        }
    }

    /// Writes an `f32` matrix (shape then data).
    pub fn put_matrix32(&mut self, m: &Matrix32) {
        self.put_usize(m.rows);
        self.put_usize(m.cols);
        for &v in &m.data {
            self.put_f32(v);
        }
    }
}

/// Deserializer walking a [`ByteWriter`] buffer.
///
/// # Panics
///
/// Every reader method panics on truncated input; blobs come from the
/// in-process cache, so truncation is a serializer bug.
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from `data` starting at the front.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        let end = self.pos + 8;
        assert!(end <= self.data.len(), "model blob truncated at {}", self.pos);
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        u64::from_le_bytes(bytes)
    }

    /// Reads a `usize`.
    pub fn get_usize(&mut self) -> usize {
        self.get_u64() as usize
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Vec<f64> {
        let n = self.get_usize();
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn get_usizes(&mut self) -> Vec<usize> {
        let n = self.get_usize();
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Vec<u8> {
        let n = self.get_usize();
        let end = self.pos + n;
        assert!(end <= self.data.len(), "model blob truncated at {}", self.pos);
        let out = self.data[self.pos..end].to_vec();
        self.pos = end;
        out
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        let end = self.pos + 4;
        assert!(end <= self.data.len(), "model blob truncated at {}", self.pos);
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        u32::from_le_bytes(bytes)
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn get_f32s(&mut self) -> Vec<f32> {
        let n = self.get_usize();
        (0..n).map(|_| self.get_f32()).collect()
    }

    /// Reads a length-prefixed `i8` vector.
    pub fn get_i8s(&mut self) -> Vec<i8> {
        let n = self.get_usize();
        let end = self.pos + n;
        assert!(end <= self.data.len(), "model blob truncated at {}", self.pos);
        let out = self.data[self.pos..end].iter().map(|&b| b as i8).collect();
        self.pos = end;
        out
    }

    /// Reads a matrix.
    pub fn get_matrix(&mut self) -> Matrix {
        let rows = self.get_usize();
        let cols = self.get_usize();
        let data = (0..rows * cols).map(|_| self.get_f64()).collect();
        Matrix { rows, cols, data }
    }

    /// Reads an `f32` matrix.
    pub fn get_matrix32(&mut self) -> Matrix32 {
        let rows = self.get_usize();
        let cols = self.get_usize();
        let data = (0..rows * cols).map(|_| self.get_f32()).collect();
        Matrix32 { rows, cols, data }
    }

    /// True when the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        w.put_f64(-0.1);
        w.put_f64s(&[1.5, f64::MIN_POSITIVE, -0.0]);
        w.put_usizes(&[0, 9, 3]);
        w.put_bytes(&[0xAB, 0, 0xCD]);
        w.put_matrix(&Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 * 0.5));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_usize(), 42);
        assert_eq!(r.get_f64(), -0.1);
        let fs = r.get_f64s();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0], 1.5);
        assert_eq!(fs[1], f64::MIN_POSITIVE);
        assert_eq!(fs[2].to_bits(), (-0.0f64).to_bits(), "sign of zero survives");
        assert_eq!(r.get_usizes(), vec![0, 9, 3]);
        assert_eq!(r.get_bytes(), vec![0xAB, 0, 0xCD]);
        let m = r.get_matrix();
        assert_eq!((m.rows, m.cols), (2, 3));
        assert_eq!(m.get(1, 2), 2.5);
        assert!(r.is_done());
    }

    #[test]
    fn round_trips_the_low_precision_primitives() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX - 7);
        w.put_f32(-0.1f32);
        w.put_f32s(&[2.5f32, f32::MIN_POSITIVE, -0.0f32]);
        w.put_i8s(&[-127, -1, 0, 1, 127]);
        w.put_matrix32(&Matrix32::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.25));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u32(), u32::MAX - 7);
        assert_eq!(r.get_f32(), -0.1f32);
        let fs = r.get_f32s();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0], 2.5f32);
        assert_eq!(fs[1], f32::MIN_POSITIVE);
        assert_eq!(fs[2].to_bits(), (-0.0f32).to_bits(), "sign of zero survives");
        assert_eq!(r.get_i8s(), vec![-127, -1, 0, 1, 127]);
        let m = r.get_matrix32();
        assert_eq!((m.rows, m.cols), (3, 2));
        assert_eq!(m.row(2), &[1.0f32, 1.25]);
        assert!(r.is_done());
    }

    #[test]
    #[should_panic(expected = "model blob truncated")]
    fn truncated_blob_panics() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        let _ = r.get_u64();
    }
}
