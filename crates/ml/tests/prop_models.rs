//! Property tests on model invariants: probability normalization,
//! prediction ranges, metric bounds, and split consistency.

use proptest::prelude::*;
use yali_ml::linalg::{argmax, softmax_inplace};
use yali_ml::{accuracy, macro_f1, train_test_split, ForestConfig, RandomForest};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_is_a_distribution(v in prop::collection::vec(-50.0f64..50.0, 1..20)) {
        let mut s = v.clone();
        softmax_inplace(&mut s);
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Softmax preserves the argmax.
        prop_assert_eq!(argmax(&v), argmax(&s));
    }

    #[test]
    fn accuracy_is_bounded_and_f1_vanishes_with_it(
        extra in prop::collection::vec(0usize..4, 0..36),
        shift in 0usize..4,
    ) {
        // Ensure every class occurs, so perfect macro F1 is exactly 1.
        let mut labels = vec![0usize, 1, 2, 3];
        labels.extend(extra);
        let pred: Vec<usize> = labels.iter().map(|&y| (y + shift) % 4).collect();
        let acc = accuracy(&pred, &labels);
        let f1 = macro_f1(&pred, &labels, 4);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((0.0..=1.0).contains(&f1));
        if shift == 0 {
            prop_assert_eq!(acc, 1.0);
            prop_assert!((f1 - 1.0).abs() < 1e-12);
        } else {
            prop_assert_eq!(f1, 0.0); // a pure permutation never matches
        }
    }

    #[test]
    fn forest_predictions_stay_in_label_range(
        n_classes in 2usize..5,
        queries in prop::collection::vec(-100.0f64..100.0, 1..12),
    ) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..n_classes {
            for k in 0..6 {
                x.push(vec![c as f64 * 10.0 + k as f64 * 0.1]);
                y.push(c);
            }
        }
        let f = RandomForest::fit(&x, &y, n_classes, &ForestConfig { n_trees: 5, ..Default::default() });
        for q in queries {
            prop_assert!(f.predict(&[q]) < n_classes);
        }
    }

    #[test]
    fn split_partitions_exactly(
        per_class in 2usize..10,
        frac in 0.25f64..0.9,
    ) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            for k in 0..per_class {
                x.push(c * 100 + k);
                y.push(c);
            }
        }
        let (xtr, ytr, xte, yte) = train_test_split(&x, &y, frac, 5);
        prop_assert_eq!(xtr.len() + xte.len(), x.len());
        prop_assert_eq!(ytr.len(), xtr.len());
        prop_assert_eq!(yte.len(), xte.len());
        // No element appears twice.
        let mut all: Vec<usize> = xtr.iter().chain(xte.iter()).copied().collect();
        all.sort_unstable();
        let mut orig = x.clone();
        orig.sort_unstable();
        prop_assert_eq!(all, orig);
    }
}
