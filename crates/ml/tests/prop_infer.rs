//! Determinism of the batched inference engine: `predict_batch` must
//! equal a per-sample `predict` loop **bit-for-bit** for every
//! [`VectorClassifier`] variant and the DGCNN, across random batch shapes
//! (empty batch, batch of 1, sizes crossing the chunk boundary) and any
//! thread count — the chunk decomposition is a function of the batch
//! length alone, so `YALI_THREADS` must never change a label.

use proptest::prelude::*;
use yali_ml::{Dgcnn, DgcnnConfig, GraphSample, ModelKind, TrainConfig, VectorClassifier};

/// Deterministic, well-separated training blobs.
fn blobs(d: usize, per_class: usize, classes: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for c in 0..classes {
        for k in 0..per_class {
            let j = (k as f64 * 0.61).fract() - 0.5;
            x.push((0..d).map(|f| c as f64 * 5.0 + j + f as f64 * 0.1).collect());
            y.push(c);
        }
    }
    (x, y)
}

/// Deterministic pseudo-random queries spread over and between the blobs.
fn queries(seed: u64, n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..d)
                .map(|f| {
                    let h = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((i * 31 + f * 7) as u64)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    (h % 1600) as f64 / 100.0 - 4.0
                })
                .collect()
        })
        .collect()
}

/// Small path/star graphs with degree features, plus one pathological
/// graph with no features at all.
fn graph_queries(n: usize) -> Vec<GraphSample> {
    let mut gs = Vec::new();
    for k in 0..n {
        let nodes = 3 + (k % 5);
        let edges: Vec<(usize, usize)> = if k % 2 == 0 {
            (0..nodes - 1).map(|i| (i, i + 1)).collect()
        } else {
            (1..nodes).map(|i| (0, i)).collect()
        };
        let mut deg = vec![0.0; nodes];
        for &(s, d) in &edges {
            deg[s] += 1.0;
            deg[d] += 1.0;
        }
        let feats = deg.into_iter().map(|d| vec![1.0, d / 4.0]).collect();
        gs.push(GraphSample { feats, edges });
    }
    if n > 2 {
        // Exercise the empty-graph padding inside a batch.
        gs[n / 2] = GraphSample { feats: vec![], edges: vec![] };
    }
    gs
}

proptest! {
    // Each case trains all six models, so keep the case count low; the
    // batch-size range deliberately includes 0, 1, and values beyond the
    // 32-sample INFER_CHUNK boundary.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn predict_batch_is_bitwise_equal_to_per_sample_loop(
        seed in 0u64..1000,
        d in 1usize..4,
        size_idx in 0usize..7,
    ) {
        // Deliberately includes 0, 1, and sizes crossing INFER_CHUNK = 32.
        let n_queries = [0usize, 1, 2, 31, 32, 33, 70][size_idx];
        let classes = 3;
        let (x, y) = blobs(d, 8, classes);
        let qs = queries(seed, n_queries, d);
        let cfg = TrainConfig { seed, epochs: 2, n_trees: 5, k: 3 };
        for kind in ModelKind::ALL {
            let clf = VectorClassifier::fit(kind, &x, &y, classes, &cfg);
            let serial: Vec<usize> = qs.iter().map(|q| clf.predict(q)).collect();
            for threads in [1usize, 2, 5] {
                let batched = clf.predict_batch_with_threads(&qs, threads);
                prop_assert_eq!(&batched, &serial, "{} at {} threads", kind, threads);
            }
            prop_assert_eq!(clf.predict_batch(&qs), serial, "{} default pool", kind);
            if let Some(p) = clf.predict_proba_batch(&qs) {
                prop_assert_eq!(p.len(), qs.len(), "{} proba batch length", kind);
                for (row, &label) in p.iter().zip(&serial) {
                    let sum: f64 = row.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-9, "{} proba row sums to {}", kind, sum);
                    // The argmax of the probabilities is the prediction.
                    let amax = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                        .map(|(i, _)| i)
                        .unwrap();
                    prop_assert_eq!(amax, label, "{} proba argmax", kind);
                }
            } else {
                prop_assert_eq!(kind, ModelKind::Svm, "only svm lacks probabilities");
            }
        }
    }

    #[test]
    fn dgcnn_predict_batch_is_bitwise_equal_to_per_sample_loop(
        seed in 0u64..1000,
        size_idx in 0usize..4,
    ) {
        let n_queries = [0usize, 1, 2, 9][size_idx];
        let train = graph_queries(8);
        let y: Vec<usize> = (0..train.len()).map(|i| i % 2).collect();
        let cfg = DgcnnConfig {
            epochs: 2,
            k: 4,
            channels: vec![4, 1],
            dense: 8,
            dropout: 0.0,
            seed,
            ..Default::default()
        };
        let m = Dgcnn::fit(&train, &y, 2, &cfg);
        let qs = graph_queries(n_queries);
        let serial: Vec<usize> = qs.iter().map(|g| m.predict(g)).collect();
        for threads in [1usize, 2, 5] {
            prop_assert_eq!(
                &m.predict_batch_with_threads(&qs, threads),
                &serial,
                "dgcnn at {} threads",
                threads
            );
        }
        prop_assert_eq!(m.predict_batch(&qs), serial, "dgcnn default pool");
    }
}
