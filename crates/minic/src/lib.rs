//! # yali-minic
//!
//! *MiniC* — a small C-like language playing the role of the C/C++ front end
//! in the yali reproduction of "A Game-Based Framework to Compare Program
//! Classifiers and Evaders" (CGO 2023).
//!
//! The crate provides the full front-end pipeline:
//!
//! - [`parse`] — lexer + recursive-descent parser producing an [`ast`];
//! - [`check`] — scoping and type checking ([`sema`]);
//! - [`print()`](fn@print) — a pretty-printer whose output re-parses to an equal AST;
//! - [`lower()`](lower()) — `clang -O0`-style lowering to [`yali_ir`] (all locals in
//!   `alloca`'d slots, ready for `mem2reg`).
//!
//! The AST is plain mutable data: the source-level obfuscators in `yali-obf`
//! and the author-variation machinery in `yali-dataset` rewrite it directly.
//!
//! # Example
//!
//! ```
//! use yali_ir::interp::{run, Val, ExecConfig};
//!
//! let src = r#"
//!     int gcd(int a, int b) {
//!         while (b != 0) { int t = a % b; a = b; b = t; }
//!         return a;
//!     }
//! "#;
//! let program = yali_minic::parse(src)?;
//! yali_minic::check(&program)?;
//! let module = yali_minic::lower(&program);
//! let out = run(&module, "gcd", &[Val::Int(48), Val::Int(18)], &[], &ExecConfig::default())?;
//! assert_eq!(out.ret, Some(Val::Int(6)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod sema;

pub use ast::{BinOp, Block, Expr, FuncDecl, LValue, Param, Program, Stmt, Ty, UnOp};
pub use lower::lower;
pub use parser::{parse, SyntaxError};
pub use printer::print;
pub use sema::{check, SemaError};

/// Parses, checks, and lowers a source file in one call.
///
/// # Errors
///
/// Returns the syntax or semantic error as a boxed error.
///
/// # Examples
///
/// ```
/// let m = yali_minic::compile("int one() { return 1; }")?;
/// assert!(m.function("one").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(src: &str) -> Result<yali_ir::Module, Box<dyn std::error::Error>> {
    let p = parse(src)?;
    check(&p)?;
    Ok(lower(&p))
}
