//! Lexer and recursive-descent parser for MiniC source text.
//!
//! The grammar is a compact subset of C. Compound assignments (`+=` …) and
//! postfix `++`/`--` in statement position are accepted as sugar and
//! desugared during parsing, mirroring how clang's AST would present them
//! to later passes.

use crate::ast::*;
use std::error::Error;
use std::fmt;

/// A syntax error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// The offending line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at line {}: {}", self.line, self.msg)
    }
}

impl Error for SyntaxError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "++", "--", "&=", "|=", "^=", "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ":",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, SyntaxError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(chars.len());
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len() {
                match chars[i] {
                    '0'..='9' => i += 1,
                    '.' => {
                        is_float = true;
                        i += 1;
                    }
                    'e' | 'E' if i > start => {
                        is_float = true;
                        i += 1;
                        if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                            i += 1;
                        }
                    }
                    _ => break,
                }
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                let v = text.parse::<f64>().map_err(|_| SyntaxError {
                    line,
                    msg: format!("bad float literal {text}"),
                })?;
                toks.push((Tok::Float(v), line));
            } else {
                let v = text.parse::<i64>().map_err(|_| SyntaxError {
                    line,
                    msg: format!("bad integer literal {text}"),
                })?;
                toks.push((Tok::Int(v), line));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push((Tok::Ident(chars[start..i].iter().collect()), line));
            continue;
        }
        // Punctuation: longest match.
        let rest: String = chars[i..(i + 3).min(chars.len())].iter().collect();
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                toks.push((Tok::Punct(p), line));
                i += p.len();
            }
            None => {
                return Err(SyntaxError {
                    line,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        let idx = self.pos.min(self.toks.len().saturating_sub(1));
        self.toks.get(idx).map(|(_, l)| *l).unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> SyntaxError {
        SyntaxError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek() == Some(&Tok::Punct(punct_of(p))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<(), SyntaxError> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, SyntaxError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn peek_type(&self) -> Option<Ty> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "int" => Some(Ty::Int),
            Some(Tok::Ident(s)) if s == "float" => Some(Ty::Float),
            Some(Tok::Ident(s)) if s == "void" => Some(Ty::Void),
            _ => None,
        }
    }

    fn parse_program(&mut self) -> Result<Program, SyntaxError> {
        let mut funcs = Vec::new();
        while self.peek().is_some() {
            funcs.push(self.parse_func()?);
        }
        Ok(Program { funcs })
    }

    fn parse_func(&mut self) -> Result<FuncDecl, SyntaxError> {
        let ret = self
            .peek_type()
            .ok_or_else(|| self.err("expected return type"))?;
        self.pos += 1;
        let name = self.expect_ident()?;
        self.expect("(")?;
        let mut params = Vec::new();
        if !self.eat(")") {
            loop {
                let mut ty = self
                    .peek_type()
                    .ok_or_else(|| self.err("expected parameter type"))?;
                if ty == Ty::Void {
                    return Err(self.err("void parameter"));
                }
                self.pos += 1;
                let pname = self.expect_ident()?;
                if self.eat("[") {
                    self.expect("]")?;
                    ty = match ty {
                        Ty::Int => Ty::IntArray,
                        Ty::Float => Ty::FloatArray,
                        _ => return Err(self.err("bad array parameter")),
                    };
                }
                params.push(Param { name: pname, ty });
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        let body = self.parse_block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
        })
    }

    fn parse_block(&mut self) -> Result<Block, SyntaxError> {
        self.expect("{")?;
        let mut stmts = Vec::new();
        while !self.eat("}") {
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block::new(stmts))
    }

    /// A block, or a single statement treated as a one-statement block.
    fn parse_block_or_stmt(&mut self) -> Result<Block, SyntaxError> {
        if self.peek() == Some(&Tok::Punct("{")) {
            self.parse_block()
        } else {
            Ok(Block::new(vec![self.parse_stmt()?]))
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, SyntaxError> {
        if let Some(ty) = self.peek_type() {
            if ty == Ty::Void {
                return Err(self.err("void declaration"));
            }
            self.pos += 1;
            let s = self.parse_decl_tail(ty)?;
            self.expect(";")?;
            return Ok(s);
        }
        if self.eat_kw("if") {
            self.expect("(")?;
            let cond = self.parse_expr()?;
            self.expect(")")?;
            let then_b = self.parse_block_or_stmt()?;
            let else_b = if self.eat_kw("else") {
                Some(self.parse_block_or_stmt()?)
            } else {
                None
            };
            return Ok(Stmt::If(cond, then_b, else_b));
        }
        if self.eat_kw("while") {
            self.expect("(")?;
            let cond = self.parse_expr()?;
            self.expect(")")?;
            let body = self.parse_block_or_stmt()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("do") {
            let body = self.parse_block_or_stmt()?;
            if !self.eat_kw("while") {
                return Err(self.err("expected 'while' after do-body"));
            }
            self.expect("(")?;
            let cond = self.parse_expr()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_kw("for") {
            self.expect("(")?;
            let init = if self.eat(";") {
                None
            } else {
                let s = if let Some(ty) = self.peek_type() {
                    self.pos += 1;
                    self.parse_decl_tail(ty)?
                } else {
                    self.parse_assign_like()?
                };
                self.expect(";")?;
                Some(Box::new(s))
            };
            let cond = if self.eat(";") {
                None
            } else {
                let e = self.parse_expr()?;
                self.expect(";")?;
                Some(e)
            };
            let step = if self.eat(")") {
                None
            } else {
                let s = self.parse_assign_like()?;
                self.expect(")")?;
                Some(Box::new(s))
            };
            let body = self.parse_block_or_stmt()?;
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_kw("switch") {
            self.expect("(")?;
            let scrutinee = self.parse_expr()?;
            self.expect(")")?;
            self.expect("{")?;
            let mut cases = Vec::new();
            let mut default = None;
            while !self.eat("}") {
                if self.eat_kw("case") {
                    let v = match self.next() {
                        Some(Tok::Int(v)) => v,
                        Some(Tok::Punct("-")) => match self.next() {
                            Some(Tok::Int(v)) => -v,
                            other => {
                                return Err(self.err(format!("bad case value {other:?}")))
                            }
                        },
                        other => return Err(self.err(format!("bad case value {other:?}"))),
                    };
                    self.expect(":")?;
                    let mut stmts = Vec::new();
                    while !matches!(self.peek(), Some(Tok::Ident(s)) if s == "case" || s == "default")
                        && self.peek() != Some(&Tok::Punct("}"))
                    {
                        stmts.push(self.parse_stmt()?);
                    }
                    // A trailing `break;` in a case is implicit in MiniC.
                    if stmts.last() == Some(&Stmt::Break) {
                        stmts.pop();
                    }
                    cases.push((v, Block::new(stmts)));
                } else if self.eat_kw("default") {
                    self.expect(":")?;
                    let mut stmts = Vec::new();
                    while !matches!(self.peek(), Some(Tok::Ident(s)) if s == "case" || s == "default")
                        && self.peek() != Some(&Tok::Punct("}"))
                    {
                        stmts.push(self.parse_stmt()?);
                    }
                    if stmts.last() == Some(&Stmt::Break) {
                        stmts.pop();
                    }
                    default = Some(Block::new(stmts));
                } else {
                    return Err(self.err("expected 'case' or 'default'"));
                }
            }
            return Ok(Stmt::Switch(scrutinee, cases, default));
        }
        if self.eat_kw("break") {
            self.expect(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("return") {
            if self.eat(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.peek() == Some(&Tok::Punct("{")) {
            return Ok(Stmt::Block(self.parse_block()?));
        }
        let s = self.parse_assign_like()?;
        self.expect(";")?;
        Ok(s)
    }

    fn parse_decl_tail(&mut self, ty: Ty) -> Result<Stmt, SyntaxError> {
        let name = self.expect_ident()?;
        if self.eat("[") {
            let size = self.parse_expr()?;
            self.expect("]")?;
            return Ok(Stmt::DeclArray(name, ty, size));
        }
        let init = if self.eat("=") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::DeclScalar(name, ty, init))
    }

    /// Parses an assignment, compound assignment, `++`/`--`, or a bare call,
    /// as allowed in statement position and `for` clauses.
    fn parse_assign_like(&mut self) -> Result<Stmt, SyntaxError> {
        let name = match self.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            other => return Err(self.err(format!("expected statement, found {other:?}"))),
        };
        // A bare call?
        if self.peek2() == Some(&Tok::Punct("(")) {
            let e = self.parse_expr()?;
            return Ok(Stmt::ExprStmt(e));
        }
        self.pos += 1;
        let lv = if self.eat("[") {
            let idx = self.parse_expr()?;
            self.expect("]")?;
            LValue::Index(name.clone(), idx)
        } else {
            LValue::Var(name.clone())
        };
        let lv_expr = match &lv {
            LValue::Var(n) => Expr::Var(n.clone()),
            LValue::Index(n, i) => Expr::Index(n.clone(), Box::new(i.clone())),
        };
        let compound = |op: BinOp, rhs: Expr| -> Stmt {
            Stmt::Assign(lv.clone(), Expr::bin(op, lv_expr.clone(), rhs))
        };
        match self.next() {
            Some(Tok::Punct("=")) => Ok(Stmt::Assign(lv, self.parse_expr()?)),
            Some(Tok::Punct("+=")) => Ok(compound(BinOp::Add, self.parse_expr()?)),
            Some(Tok::Punct("-=")) => Ok(compound(BinOp::Sub, self.parse_expr()?)),
            Some(Tok::Punct("*=")) => Ok(compound(BinOp::Mul, self.parse_expr()?)),
            Some(Tok::Punct("/=")) => Ok(compound(BinOp::Div, self.parse_expr()?)),
            Some(Tok::Punct("%=")) => Ok(compound(BinOp::Rem, self.parse_expr()?)),
            Some(Tok::Punct("&=")) => Ok(compound(BinOp::BitAnd, self.parse_expr()?)),
            Some(Tok::Punct("|=")) => Ok(compound(BinOp::BitOr, self.parse_expr()?)),
            Some(Tok::Punct("^=")) => Ok(compound(BinOp::BitXor, self.parse_expr()?)),
            Some(Tok::Punct("<<=")) => Ok(compound(BinOp::Shl, self.parse_expr()?)),
            Some(Tok::Punct(">>=")) => Ok(compound(BinOp::Shr, self.parse_expr()?)),
            Some(Tok::Punct("++")) => Ok(compound(BinOp::Add, Expr::Int(1))),
            Some(Tok::Punct("--")) => Ok(compound(BinOp::Sub, Expr::Int(1))),
            other => Err(self.err(format!("expected assignment operator, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, SyntaxError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, SyntaxError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::Punct("||")) => (BinOp::Or, 1),
                Some(Tok::Punct("&&")) => (BinOp::And, 2),
                Some(Tok::Punct("|")) => (BinOp::BitOr, 3),
                Some(Tok::Punct("^")) => (BinOp::BitXor, 4),
                Some(Tok::Punct("&")) => (BinOp::BitAnd, 5),
                Some(Tok::Punct("==")) => (BinOp::Eq, 6),
                Some(Tok::Punct("!=")) => (BinOp::Ne, 6),
                Some(Tok::Punct("<")) => (BinOp::Lt, 7),
                Some(Tok::Punct("<=")) => (BinOp::Le, 7),
                Some(Tok::Punct(">")) => (BinOp::Gt, 7),
                Some(Tok::Punct(">=")) => (BinOp::Ge, 7),
                Some(Tok::Punct("<<")) => (BinOp::Shl, 8),
                Some(Tok::Punct(">>")) => (BinOp::Shr, 8),
                Some(Tok::Punct("+")) => (BinOp::Add, 9),
                Some(Tok::Punct("-")) => (BinOp::Sub, 9),
                Some(Tok::Punct("*")) => (BinOp::Mul, 10),
                Some(Tok::Punct("/")) => (BinOp::Div, 10),
                Some(Tok::Punct("%")) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, SyntaxError> {
        if self.eat("-") {
            // Fold negation of literals so `(-5)` and a constructed
            // `Expr::Int(-5)` are the same AST.
            return Ok(match self.parse_unary()? {
                Expr::Int(v) => Expr::Int(v.wrapping_neg()),
                Expr::Float(v) => Expr::Float(-v),
                e => Expr::Unary(UnOp::Neg, Box::new(e)),
            });
        }
        if self.eat("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)));
        }
        if self.eat("~") {
            return Ok(Expr::Unary(UnOp::BitNot, Box::new(self.parse_unary()?)));
        }
        // Cast: "(" type ")" unary
        if self.peek() == Some(&Tok::Punct("(")) {
            let cast_ty = match self.peek2() {
                Some(Tok::Ident(s)) if s == "int" => Some(Ty::Int),
                Some(Tok::Ident(s)) if s == "float" => Some(Ty::Float),
                _ => None,
            };
            if let Some(ty) = cast_ty {
                if self.toks.get(self.pos + 2).map(|(t, _)| t) == Some(&Tok::Punct(")")) {
                    self.pos += 3;
                    return Ok(Expr::Cast(ty, Box::new(self.parse_unary()?)));
                }
            }
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, SyntaxError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::Punct("(")) => {
                let e = self.parse_expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat("(") {
                    let mut args = Vec::new();
                    if !self.eat(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(")") {
                                break;
                            }
                            self.expect(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat("[") {
                    let idx = self.parse_expr()?;
                    self.expect("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn punct_of(p: &str) -> &'static str {
    PUNCTS
        .iter()
        .find(|&&q| q == p)
        .copied()
        .unwrap_or_else(|| panic!("unknown punct {p}"))
}

/// Parses a MiniC program from source text.
///
/// # Errors
///
/// Returns a [`SyntaxError`] pointing at the first offending line.
///
/// # Examples
///
/// ```
/// let src = "int twice(int x) { return x * 2; }";
/// let prog = yali_minic::parse(src)?;
/// assert_eq!(prog.funcs[0].name, "twice");
/// # Ok::<(), yali_minic::SyntaxError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, SyntaxError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gcd() {
        let src = r#"
            int gcd(int a, int b) {
                while (b != 0) {
                    int t = a % b;
                    a = b;
                    b = t;
                }
                return a;
            }
            void main() {
                int n = read_int();
                int m = read_int();
                print_int(gcd(n, m));
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.funcs[0].params.len(), 2);
        assert_eq!(p.funcs[1].ret, Ty::Void);
    }

    #[test]
    fn precedence_binds_mul_tighter_than_add() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(Expr::Binary(BinOp::Add, _, rhs))) = &p.funcs[0].body.stmts[0]
        else {
            panic!("expected add at top");
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn comparison_below_logical() {
        let p = parse("int f(int x) { return x > 1 && x < 10; }").unwrap();
        let Stmt::Return(Some(Expr::Binary(BinOp::And, _, _))) = &p.funcs[0].body.stmts[0] else {
            panic!("expected && at top");
        };
    }

    #[test]
    fn desugars_compound_assignment_and_increment() {
        let p = parse("void f() { int x = 0; x += 5; x++; }").unwrap();
        let body = &p.funcs[0].body.stmts;
        assert!(matches!(
            &body[1],
            Stmt::Assign(LValue::Var(_), Expr::Binary(BinOp::Add, _, _))
        ));
        assert!(matches!(
            &body[2],
            Stmt::Assign(LValue::Var(_), Expr::Binary(BinOp::Add, _, _))
        ));
    }

    #[test]
    fn parses_for_loops() {
        let p = parse("void f() { for (int i = 0; i < 10; i++) { print_int(i); } }").unwrap();
        let Stmt::For(init, cond, step, body) = &p.funcs[0].body.stmts[0] else {
            panic!("expected for");
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn parses_arrays() {
        let p = parse("int sum(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } return s; } void main() { int v[10]; v[0] = 3; print_int(sum(v, 10)); }").unwrap();
        assert_eq!(p.funcs[0].params[0].ty, Ty::IntArray);
        assert!(matches!(
            p.funcs[1].body.stmts[0],
            Stmt::DeclArray(_, Ty::Int, _)
        ));
    }

    #[test]
    fn parses_switch_without_fallthrough() {
        let src = "void f(int x) { switch (x) { case 1: print_int(1); break; case 2: print_int(2); default: print_int(0); } }";
        let p = parse(src).unwrap();
        let Stmt::Switch(_, cases, default) = &p.funcs[0].body.stmts[0] else {
            panic!("expected switch");
        };
        assert_eq!(cases.len(), 2);
        assert!(default.is_some());
        // the explicit break was absorbed
        assert_eq!(cases[0].1.stmts.len(), 1);
    }

    #[test]
    fn parses_do_while_and_casts() {
        let src = "float f(int n) { float s = 0.0; do { s = s + (float)n; n--; } while (n > 0); return s; }";
        let p = parse(src).unwrap();
        assert!(matches!(p.funcs[0].body.stmts[1], Stmt::DoWhile(_, _)));
    }

    #[test]
    fn error_has_line_number() {
        let err = parse("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn float_literals() {
        let p = parse("float f() { return 3.5e2; }").unwrap();
        let Stmt::Return(Some(Expr::Float(v))) = &p.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(*v, 350.0);
    }

    #[test]
    fn if_without_braces() {
        let p = parse("int f(int x) { if (x > 0) return 1; else return 0; }").unwrap();
        let Stmt::If(_, t, e) = &p.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(t.stmts.len(), 1);
        assert!(e.is_some());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// leading\nint f() { /* inner\nmultiline */ return 1; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn negative_case_labels() {
        let p = parse("void f(int x) { switch (x) { case -1: print_int(0); } }").unwrap();
        let Stmt::Switch(_, cases, _) = &p.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(cases[0].0, -1);
    }
}
