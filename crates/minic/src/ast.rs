//! The MiniC abstract syntax tree.
//!
//! MiniC is a small C-like language, rich enough to express the kinds of
//! programs found in programming-judge datasets (loops, arrays, recursion,
//! floats, switch statements) while remaining easy to transform. The AST is
//! deliberately plain data — `Clone`/`PartialEq` everywhere — because the
//! source-level obfuscators of `yali-obf` and the author-variation engine of
//! `yali-dataset` rewrite it structurally.

use std::fmt;

/// A MiniC type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float`).
    Float,
    /// No value (`void`), only as a return type.
    Void,
    /// Pointer to int (`int[]` parameters).
    IntArray,
    /// Pointer to float (`float[]` parameters).
    FloatArray,
}

impl Ty {
    /// True for the scalar numeric types.
    pub fn is_scalar(self) -> bool {
        matches!(self, Ty::Int | Ty::Float)
    }

    /// True for array (pointer) types.
    pub fn is_array(self) -> bool {
        matches!(self, Ty::IntArray | Ty::FloatArray)
    }

    /// The element type of an array type.
    pub fn elem(self) -> Option<Ty> {
        match self {
            Ty::IntArray => Some(Ty::Int),
            Ty::FloatArray => Some(Ty::Float),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "float"),
            Ty::Void => write!(f, "void"),
            Ty::IntArray => write!(f, "int[]"),
            Ty::FloatArray => write!(f, "float[]"),
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// True for the comparison operators (result is int 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for operators defined only on integers.
    pub fn is_int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::And
                | BinOp::Or
        )
    }

    /// The C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Array element `a[i]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call (user functions or the runtime builtins).
    Call(String, Vec<Expr>),
    /// Explicit cast `(int)x` / `(float)x`.
    Cast(Ty, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    Index(String, Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar declaration `int x = e;` (the initializer is optional).
    DeclScalar(String, Ty, Option<Expr>),
    /// Array declaration `int a[n];`.
    DeclArray(String, Ty, Expr),
    /// Assignment `lv = e;`.
    Assign(LValue, Expr),
    /// `if (c) { … } else { … }`.
    If(Expr, Block, Option<Block>),
    /// `while (c) { … }`.
    While(Expr, Block),
    /// `do { … } while (c);`.
    DoWhile(Block, Expr),
    /// `for (init; cond; step) { … }`. Init and step are restricted to
    /// declarations/assignments, as in idiomatic judge submissions.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Box<Stmt>>, Block),
    /// `switch (e) { case k: …; default: … }`. Cases do not fall through.
    Switch(Expr, Vec<(i64, Block)>, Option<Block>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// An expression evaluated for effect (calls).
    ExprStmt(Expr),
    /// A braced sub-block (its own scope).
    Block(Block),
}

/// A sequence of statements in one scope.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Builds a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Ty,
    /// The body.
    pub body: Block,
}

/// A whole MiniC program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The functions; execution starts at `main`.
    pub funcs: Vec<FuncDecl>,
}

impl Program {
    /// Looks a function up by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// The runtime builtins every MiniC program may call.
///
/// Returns `(name, param_types, return_type)` triples.
pub fn builtins() -> &'static [(&'static str, &'static [Ty], Ty)] {
    &[
        ("read_int", &[], Ty::Int),
        ("read_float", &[], Ty::Float),
        ("print_int", &[Ty::Int], Ty::Void),
        ("print_float", &[Ty::Float], Ty::Void),
    ]
}

/// Applies `f` to every statement in the block tree, depth-first, children
/// before parents.
pub fn visit_stmts_mut(block: &mut Block, f: &mut impl FnMut(&mut Stmt)) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If(_, t, e) => {
                visit_stmts_mut(t, f);
                if let Some(e) = e {
                    visit_stmts_mut(e, f);
                }
            }
            Stmt::While(_, b) | Stmt::DoWhile(b, _) => visit_stmts_mut(b, f),
            Stmt::For(_, _, _, b) => visit_stmts_mut(b, f),
            Stmt::Switch(_, cases, default) => {
                for (_, b) in cases {
                    visit_stmts_mut(b, f);
                }
                if let Some(d) = default {
                    visit_stmts_mut(d, f);
                }
            }
            Stmt::Block(b) => visit_stmts_mut(b, f),
            _ => {}
        }
        f(stmt);
    }
}

/// Applies `f` to every expression in a statement, children before parents.
pub fn visit_exprs_in_stmt_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    fn walk(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
        match e {
            Expr::Index(_, i) => walk(i, f),
            Expr::Unary(_, a) => walk(a, f),
            Expr::Binary(_, a, b) => {
                walk(a, f);
                walk(b, f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    walk(a, f);
                }
            }
            Expr::Cast(_, a) => walk(a, f),
            _ => {}
        }
        f(e);
    }
    match stmt {
        Stmt::DeclScalar(_, _, Some(e)) => walk(e, f),
        Stmt::DeclArray(_, _, e) => walk(e, f),
        Stmt::Assign(lv, e) => {
            if let LValue::Index(_, i) = lv {
                walk(i, f);
            }
            walk(e, f);
        }
        Stmt::If(c, _, _) | Stmt::While(c, _) | Stmt::DoWhile(_, c) | Stmt::Switch(c, _, _) => {
            walk(c, f)
        }
        Stmt::For(init, cond, step, _) => {
            if let Some(i) = init {
                visit_exprs_in_stmt_mut(i, f);
            }
            if let Some(c) = cond {
                walk(c, f);
            }
            if let Some(s) = step {
                visit_exprs_in_stmt_mut(s, f);
            }
        }
        Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => walk(e, f),
        _ => {}
    }
}

/// Counts statements in a block tree (a crude program-size metric).
pub fn count_stmts(block: &Block) -> usize {
    let mut n = 0;
    let mut b = block.clone();
    visit_stmts_mut(&mut b, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        Block::new(vec![
            Stmt::DeclScalar("x".into(), Ty::Int, Some(Expr::Int(1))),
            Stmt::While(
                Expr::bin(BinOp::Lt, Expr::var("x"), Expr::Int(10)),
                Block::new(vec![Stmt::Assign(
                    LValue::Var("x".into()),
                    Expr::bin(BinOp::Add, Expr::var("x"), Expr::Int(1)),
                )]),
            ),
            Stmt::Return(Some(Expr::var("x"))),
        ])
    }

    #[test]
    fn visit_stmts_reaches_nested_statements() {
        let mut b = sample_block();
        let mut n = 0;
        visit_stmts_mut(&mut b, &mut |_| n += 1);
        assert_eq!(n, 4); // decl, while, assign, return
    }

    #[test]
    fn count_stmts_matches_visit() {
        assert_eq!(count_stmts(&sample_block()), 4);
    }

    #[test]
    fn visit_exprs_children_first() {
        let mut s = Stmt::Assign(
            LValue::Var("x".into()),
            Expr::bin(BinOp::Add, Expr::Int(1), Expr::Int(2)),
        );
        let mut seen = Vec::new();
        visit_exprs_in_stmt_mut(&mut s, &mut |e| {
            seen.push(format!("{e:?}"));
        });
        assert_eq!(seen.len(), 3);
        assert!(seen[0].contains("Int(1)"));
        assert!(seen[2].contains("Binary"));
    }

    #[test]
    fn ty_classification() {
        assert!(Ty::Int.is_scalar());
        assert!(Ty::IntArray.is_array());
        assert_eq!(Ty::FloatArray.elem(), Some(Ty::Float));
        assert!(!Ty::Void.is_scalar());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Rem.is_int_only());
        assert!(!BinOp::Add.is_int_only());
        assert_eq!(BinOp::Shl.symbol(), "<<");
    }

    #[test]
    fn builtins_are_known() {
        let names: Vec<&str> = builtins().iter().map(|(n, _, _)| *n).collect();
        assert!(names.contains(&"read_int"));
        assert!(names.contains(&"print_float"));
    }
}
