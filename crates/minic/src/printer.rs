//! Pretty-printer: renders a MiniC AST back to compilable source text.
//!
//! `parse(print(p))` reconstructs an equal AST, a property the test suite
//! checks on every generated program (the source obfuscators rely on being
//! able to round-trip their rewritten ASTs).

use crate::ast::*;
use std::fmt::Write;

/// Precedence of an operator, mirroring the parser's table.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

fn print_expr(e: &Expr, parent_prec: u8, out: &mut String) {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                // Negative literals print parenthesized so unary minus does
                // not fuse with a preceding operator.
                let _ = write!(out, "({v})");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Float(v) => {
            let mut s = format!("{v:?}");
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("nan") {
                s.push_str(".0");
            }
            if *v < 0.0 {
                let _ = write!(out, "({s})");
            } else {
                out.push_str(&s);
            }
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Index(n, i) => {
            let _ = write!(out, "{n}[");
            print_expr(i, 0, out);
            out.push(']');
        }
        Expr::Unary(op, a) => {
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            });
            // Unary binds tighter than any binary operator.
            let needs = matches!(**a, Expr::Binary(..));
            if needs {
                out.push('(');
            }
            print_expr(a, 11, out);
            if needs {
                out.push(')');
            }
        }
        Expr::Binary(op, a, b) => {
            let p = prec(*op);
            if p < parent_prec {
                out.push('(');
            }
            print_expr(a, p, out);
            let _ = write!(out, " {} ", op.symbol());
            print_expr(b, p + 1, out);
            if p < parent_prec {
                out.push(')');
            }
        }
        Expr::Call(n, args) => {
            let _ = write!(out, "{n}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, 0, out);
            }
            out.push(')');
        }
        Expr::Cast(ty, a) => {
            let _ = write!(out, "({ty})");
            let needs = matches!(**a, Expr::Binary(..));
            if needs {
                out.push('(');
            }
            print_expr(a, 11, out);
            if needs {
                out.push(')');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(out, depth);
    match s {
        Stmt::DeclScalar(n, ty, init) => {
            let _ = write!(out, "{ty} {n}");
            if let Some(e) = init {
                out.push_str(" = ");
                print_expr(e, 0, out);
            }
            out.push_str(";\n");
        }
        Stmt::DeclArray(n, ty, size) => {
            let _ = write!(out, "{ty} {n}[");
            print_expr(size, 0, out);
            out.push_str("];\n");
        }
        Stmt::Assign(lv, e) => {
            match lv {
                LValue::Var(n) => out.push_str(n),
                LValue::Index(n, i) => {
                    let _ = write!(out, "{n}[");
                    print_expr(i, 0, out);
                    out.push(']');
                }
            }
            out.push_str(" = ");
            print_expr(e, 0, out);
            out.push_str(";\n");
        }
        Stmt::If(c, t, e) => {
            out.push_str("if (");
            print_expr(c, 0, out);
            out.push_str(") {\n");
            print_block(t, depth + 1, out);
            indent(out, depth);
            out.push('}');
            if let Some(e) = e {
                out.push_str(" else {\n");
                print_block(e, depth + 1, out);
                indent(out, depth);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::While(c, b) => {
            out.push_str("while (");
            print_expr(c, 0, out);
            out.push_str(") {\n");
            print_block(b, depth + 1, out);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::DoWhile(b, c) => {
            out.push_str("do {\n");
            print_block(b, depth + 1, out);
            indent(out, depth);
            out.push_str("} while (");
            print_expr(c, 0, out);
            out.push_str(");\n");
        }
        Stmt::For(init, cond, step, b) => {
            out.push_str("for (");
            if let Some(i) = init {
                let mut tmp = String::new();
                print_stmt(i, 0, &mut tmp);
                out.push_str(tmp.trim_end_matches('\n').trim_end_matches(';'));
            }
            out.push_str("; ");
            if let Some(c) = cond {
                print_expr(c, 0, out);
            }
            out.push_str("; ");
            if let Some(s) = step {
                let mut tmp = String::new();
                print_stmt(s, 0, &mut tmp);
                out.push_str(tmp.trim_end_matches('\n').trim_end_matches(';'));
            }
            out.push_str(") {\n");
            print_block(b, depth + 1, out);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Switch(e, cases, default) => {
            out.push_str("switch (");
            print_expr(e, 0, out);
            out.push_str(") {\n");
            for (v, b) in cases {
                indent(out, depth + 1);
                let _ = writeln!(out, "case {v}:");
                print_block(b, depth + 2, out);
                indent(out, depth + 2);
                out.push_str("break;\n");
            }
            if let Some(d) = default {
                indent(out, depth + 1);
                out.push_str("default:\n");
                print_block(d, depth + 2, out);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Return(Some(e)) => {
            out.push_str("return ");
            print_expr(e, 0, out);
            out.push_str(";\n");
        }
        Stmt::ExprStmt(e) => {
            print_expr(e, 0, out);
            out.push_str(";\n");
        }
        Stmt::Block(b) => {
            out.push_str("{\n");
            print_block(b, depth + 1, out);
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

fn print_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, depth, out);
    }
}

/// Renders a program to MiniC source text.
///
/// # Examples
///
/// ```
/// let p = yali_minic::parse("int f(int x) { return x + 1; }")?;
/// let src = yali_minic::print(&p);
/// assert!(src.contains("return x + 1;"));
/// # Ok::<(), yali_minic::SyntaxError>(())
/// ```
pub fn print(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.funcs {
        let _ = write!(out, "{} {}(", f.ret, f.name);
        for (i, param) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match param.ty {
                Ty::IntArray => {
                    let _ = write!(out, "int {}[]", param.name);
                }
                Ty::FloatArray => {
                    let _ = write!(out, "float {}[]", param.name);
                }
                ty => {
                    let _ = write!(out, "{ty} {}", param.name);
                }
            }
        }
        out.push_str(") {\n");
        print_block(&f.body, 1, &mut out);
        out.push_str("}\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let text = print(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(p1, p2, "round trip mismatch:\n{text}");
    }

    #[test]
    fn round_trips_arithmetic_precedence() {
        round_trip("int f(int x) { return (x + 1) * (x - 2) / 3 % 4; }");
        round_trip("int g(int x) { return x << 2 | x >> 1 & 3 ^ x; }");
        round_trip("int h(int x) { return -x + !x - ~x; }");
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i % 2 == 0) { print_int(i); } else { continue; } } }",
        );
        round_trip("void g(int n) { do { n--; } while (n > 0); }");
        round_trip(
            "void h(int x) { switch (x) { case 1: print_int(1); break; case -2: print_int(2); break; default: print_int(0); } }",
        );
    }

    #[test]
    fn round_trips_arrays_and_floats() {
        round_trip("float avg(float a[], int n) { float s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; } return s / (float)n; }");
        round_trip("void f() { int v[100]; v[3] = 1; print_int(v[3]); }");
    }

    #[test]
    fn round_trips_negative_literals() {
        round_trip("int f() { return 3 - -4; }");
        round_trip("float g() { return 0.0 - 2.5; }");
    }

    #[test]
    fn nested_logic_round_trips() {
        round_trip("int f(int a, int b) { return a > 0 && b > 0 || a < 0 && b < 0; }");
        round_trip("int g(int a) { return !(a > 1 || a < -1); }");
    }
}
