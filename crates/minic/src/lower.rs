//! Lowering from the MiniC AST to `yali-ir`, in the style of `clang -O0`.
//!
//! Like clang at `-O0`, every local variable (including parameters) lives in
//! an `alloca`'d stack slot: reads load, writes store, and no SSA values flow
//! across statements. This is important for the reproduction: the paper's
//! observation that "the SSA conversion that LLVM uses reverts all the
//! effects of [the drlsg source obfuscator]" only manifests when the
//! baseline code is memory-based and `mem2reg` (in `yali-opt`) performs the
//! promotion.
//!
//! Scalar `alloca`s are hoisted to the entry block (as clang does), so loops
//! do not grow the interpreter's memory.

use crate::ast::*;
use crate::sema::{self, FuncSig, Scopes};
use std::collections::HashMap;
use yali_ir::{BlockId, Cmp, FunctionBuilder, Inst, Module, Op, Type, Value};

/// How a MiniC variable is stored.
#[derive(Debug, Clone)]
enum Slot {
    /// A stack slot (pointer value) holding a scalar of the given type.
    Stack(Value, Ty),
    /// A directly usable value (array parameters: already pointers).
    Direct(Value),
}

fn ir_scalar(ty: Ty) -> Type {
    match ty {
        Ty::Int => Type::I64,
        Ty::Float => Type::F64,
        Ty::Void => Type::Void,
        Ty::IntArray => Type::ptr(Type::I64),
        Ty::FloatArray => Type::ptr(Type::F64),
    }
}

struct Lowerer<'a> {
    b: FunctionBuilder,
    sigs: &'a HashMap<String, FuncSig>,
    scopes: Vec<HashMap<String, Slot>>,
    ty_scopes: Scopes,
    entry: BlockId,
    /// Number of allocas already hoisted into the entry block.
    entry_allocas: usize,
    break_stack: Vec<BlockId>,
    continue_stack: Vec<BlockId>,
    ret: Ty,
}

impl<'a> Lowerer<'a> {
    fn lookup(&self, name: &str) -> &Slot {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .unwrap_or_else(|| panic!("sema missed undeclared variable {name}"))
    }

    fn declare(&mut self, name: &str, slot: Slot, ty: Ty) {
        self.scopes
            .last_mut()
            .expect("no scope")
            .insert(name.to_string(), slot);
        self.ty_scopes.declare(name, ty);
    }

    /// Allocates a hoisted scalar stack slot in the entry block.
    fn entry_alloca(&mut self, elem: Type) -> Value {
        let inst = Inst::new(
            Op::Alloca,
            Type::ptr(elem),
            vec![Value::const_int(Type::I64, 1)],
        );
        let id = self.b.func_mut().new_inst(inst);
        let pos = self.entry_allocas;
        self.b.func_mut().insert_inst(self.entry, pos, id);
        self.entry_allocas += 1;
        Value::Inst(id)
    }

    fn expr_ty(&self, e: &Expr) -> Ty {
        sema::expr_ty(e, &self.ty_scopes, self.sigs).expect("sema accepted ill-typed expression")
    }

    /// Inserts an int→float promotion when needed.
    fn promote(&mut self, v: Value, from: Ty, to: Ty) -> Value {
        match (from, to) {
            (Ty::Int, Ty::Float) => self.b.cast(Op::SiToFp, v, Type::F64),
            (Ty::Float, Ty::Int) => self.b.cast(Op::FpToSi, v, Type::I64),
            _ => v,
        }
    }

    /// Lowers an expression to an `i1` truth value (condition position).
    fn lower_cond(&mut self, e: &Expr) -> Value {
        match e {
            Expr::Binary(op, a, b) if op.is_comparison() => {
                let at = self.expr_ty(a);
                let bt = self.expr_ty(b);
                let common = if at == Ty::Float || bt == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                let va = self.lower_expr(a);
                let va = self.promote(va, at, common);
                let vb = self.lower_expr(b);
                let vb = self.promote(vb, bt, common);
                if common == Ty::Float {
                    let pred = match op {
                        BinOp::Lt => Cmp::Olt,
                        BinOp::Le => Cmp::Ole,
                        BinOp::Gt => Cmp::Ogt,
                        BinOp::Ge => Cmp::Oge,
                        BinOp::Eq => Cmp::Oeq,
                        _ => Cmp::One,
                    };
                    self.b.fcmp(pred, va, vb)
                } else {
                    let pred = match op {
                        BinOp::Lt => Cmp::Slt,
                        BinOp::Le => Cmp::Sle,
                        BinOp::Gt => Cmp::Sgt,
                        BinOp::Ge => Cmp::Sge,
                        BinOp::Eq => Cmp::Eq,
                        _ => Cmp::Ne,
                    };
                    self.b.icmp(pred, va, vb)
                }
            }
            Expr::Binary(BinOp::And, a, b) => {
                // a && b: evaluate b only if a is true.
                let va = self.lower_cond(a);
                let lhs_block = self.b.current();
                let rhs_block = self.b.add_block();
                let join = self.b.add_block();
                self.b.condbr(va, rhs_block, join);
                self.b.switch_to(rhs_block);
                let vb = self.lower_cond(b);
                let rhs_end = self.b.current();
                self.b.br(join);
                self.b.switch_to(join);
                self.b.phi(
                    Type::I1,
                    vec![(Value::const_bool(false), lhs_block), (vb, rhs_end)],
                )
            }
            Expr::Binary(BinOp::Or, a, b) => {
                let va = self.lower_cond(a);
                let lhs_block = self.b.current();
                let rhs_block = self.b.add_block();
                let join = self.b.add_block();
                self.b.condbr(va, join, rhs_block);
                self.b.switch_to(rhs_block);
                let vb = self.lower_cond(b);
                let rhs_end = self.b.current();
                self.b.br(join);
                self.b.switch_to(join);
                self.b.phi(
                    Type::I1,
                    vec![(Value::const_bool(true), lhs_block), (vb, rhs_end)],
                )
            }
            Expr::Unary(UnOp::Not, a) => {
                let v = self.lower_cond(a);
                self.b.binop(Op::Xor, v, Value::const_bool(true))
            }
            other => {
                let t = self.expr_ty(other);
                let v = self.lower_expr(other);
                if t == Ty::Float {
                    self.b.fcmp(Cmp::One, v, Value::ConstFloat(0.0))
                } else {
                    self.b.icmp(Cmp::Ne, v, Value::const_int(Type::I64, 0))
                }
            }
        }
    }

    /// Lowers an expression to its value (int as `i64`, float as `f64`,
    /// arrays as pointers).
    fn lower_expr(&mut self, e: &Expr) -> Value {
        match e {
            Expr::Int(v) => Value::const_int(Type::I64, *v),
            Expr::Float(v) => Value::ConstFloat(*v),
            Expr::Var(n) => match self.lookup(n).clone() {
                // Local arrays: the alloca *is* the array base pointer.
                Slot::Stack(ptr, ty) if ty.is_array() => ptr,
                Slot::Stack(ptr, _) => self.b.load(ptr),
                Slot::Direct(v) => v,
            },
            Expr::Index(n, i) => {
                let ptr = self.element_ptr(n, i);
                self.b.load(ptr)
            }
            Expr::Unary(op, a) => {
                let at = self.expr_ty(a);
                match op {
                    UnOp::Neg => {
                        let v = self.lower_expr(a);
                        if at == Ty::Float {
                            self.b.emit(Inst::new(Op::FNeg, Type::F64, vec![v]))
                        } else {
                            let zero = Value::const_int(Type::I64, 0);
                            self.b.binop(Op::Sub, zero, v)
                        }
                    }
                    UnOp::Not => {
                        let c = self.lower_cond(a);
                        let inv = self.b.binop(Op::Xor, c, Value::const_bool(true));
                        self.b.cast(Op::ZExt, inv, Type::I64)
                    }
                    UnOp::BitNot => {
                        let v = self.lower_expr(a);
                        self.b.binop(Op::Xor, v, Value::const_int(Type::I64, -1))
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                if op.is_comparison() || op.is_logical() {
                    let c = self.lower_cond(e);
                    return self.b.cast(Op::ZExt, c, Type::I64);
                }
                let at = self.expr_ty(a);
                let bt = self.expr_ty(b);
                let common = if at == Ty::Float || bt == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                let va = self.lower_expr(a);
                let va = self.promote(va, at, common);
                let vb = self.lower_expr(b);
                let vb = self.promote(vb, bt, common);
                let irop = match (op, common) {
                    (BinOp::Add, Ty::Float) => Op::FAdd,
                    (BinOp::Sub, Ty::Float) => Op::FSub,
                    (BinOp::Mul, Ty::Float) => Op::FMul,
                    (BinOp::Div, Ty::Float) => Op::FDiv,
                    (BinOp::Add, _) => Op::Add,
                    (BinOp::Sub, _) => Op::Sub,
                    (BinOp::Mul, _) => Op::Mul,
                    (BinOp::Div, _) => Op::SDiv,
                    (BinOp::Rem, _) => Op::SRem,
                    (BinOp::BitAnd, _) => Op::And,
                    (BinOp::BitOr, _) => Op::Or,
                    (BinOp::BitXor, _) => Op::Xor,
                    (BinOp::Shl, _) => Op::Shl,
                    (BinOp::Shr, _) => Op::AShr,
                    (op, _) => unreachable!("unhandled operator {op:?}"),
                };
                self.b.binop(irop, va, vb)
            }
            Expr::Call(n, args) => {
                let sig = self.sigs.get(n).expect("sema missed unknown callee").clone();
                let mut vals = Vec::with_capacity(args.len());
                for (a, &pt) in args.iter().zip(&sig.params) {
                    let at = self.expr_ty(a);
                    let v = self.lower_expr(a);
                    vals.push(self.promote(v, at, pt));
                }
                self.b.call(n, ir_scalar(sig.ret), vals)
            }
            Expr::Cast(ty, a) => {
                let at = self.expr_ty(a);
                let v = self.lower_expr(a);
                self.promote(v, at, *ty)
            }
        }
    }

    /// Computes the address of `name[idx]`.
    fn element_ptr(&mut self, name: &str, idx: &Expr) -> Value {
        let base = match self.lookup(name).clone() {
            Slot::Direct(v) => v,
            Slot::Stack(ptr, _) => ptr, // local arrays: the alloca is the base
        };
        let iv = self.lower_expr(idx);
        self.b.gep(base, iv)
    }

    fn lower_block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        self.ty_scopes.push();
        for s in &block.stmts {
            if self.b.is_terminated() {
                break; // dead code after return/break/continue
            }
            self.lower_stmt(s);
        }
        self.ty_scopes.pop();
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::DeclScalar(n, ty, init) => {
                let ptr = self.entry_alloca(ir_scalar(*ty));
                if let Some(e) = init {
                    let et = self.expr_ty(e);
                    let v = self.lower_expr(e);
                    let v = self.promote(v, et, *ty);
                    self.b.store(v, ptr.clone());
                }
                self.declare(n, Slot::Stack(ptr, *ty), *ty);
            }
            Stmt::DeclArray(n, ty, size) => {
                let sv = self.lower_expr(size);
                let ptr = self.b.alloca(ir_scalar(*ty), sv);
                let at = if *ty == Ty::Int {
                    Ty::IntArray
                } else {
                    Ty::FloatArray
                };
                self.declare(n, Slot::Stack(ptr, at), at);
            }
            Stmt::Assign(lv, e) => {
                let (ptr, lt) = match lv {
                    LValue::Var(n) => match self.lookup(n).clone() {
                        Slot::Stack(p, t) => (p, t),
                        Slot::Direct(_) => panic!("sema missed assignment to array"),
                    },
                    LValue::Index(n, i) => {
                        let elem = self
                            .ty_scopes
                            .lookup(n)
                            .and_then(Ty::elem)
                            .expect("sema missed bad index");
                        (self.element_ptr(n, i), elem)
                    }
                };
                let et = self.expr_ty(e);
                let v = self.lower_expr(e);
                let v = self.promote(v, et, lt);
                self.b.store(v, ptr);
            }
            Stmt::If(c, t, e) => {
                let cond = self.lower_cond(c);
                let then_b = self.b.add_block();
                let join = self.b.add_block();
                let else_b = if e.is_some() { self.b.add_block() } else { join };
                self.b.condbr(cond, then_b, else_b);
                self.b.switch_to(then_b);
                self.lower_block(t);
                if !self.b.is_terminated() {
                    self.b.br(join);
                }
                if let Some(e) = e {
                    self.b.switch_to(else_b);
                    self.lower_block(e);
                    if !self.b.is_terminated() {
                        self.b.br(join);
                    }
                }
                self.b.switch_to(join);
            }
            Stmt::While(c, body) => {
                let header = self.b.add_block();
                let body_b = self.b.add_block();
                let exit = self.b.add_block();
                self.b.br(header);
                self.b.switch_to(header);
                let cond = self.lower_cond(c);
                self.b.condbr(cond, body_b, exit);
                self.b.switch_to(body_b);
                self.break_stack.push(exit);
                self.continue_stack.push(header);
                self.lower_block(body);
                self.continue_stack.pop();
                self.break_stack.pop();
                if !self.b.is_terminated() {
                    self.b.br(header);
                }
                self.b.switch_to(exit);
            }
            Stmt::DoWhile(body, c) => {
                let body_b = self.b.add_block();
                let latch = self.b.add_block();
                let exit = self.b.add_block();
                self.b.br(body_b);
                self.b.switch_to(body_b);
                self.break_stack.push(exit);
                self.continue_stack.push(latch);
                self.lower_block(body);
                self.continue_stack.pop();
                self.break_stack.pop();
                if !self.b.is_terminated() {
                    self.b.br(latch);
                }
                self.b.switch_to(latch);
                let cond = self.lower_cond(c);
                self.b.condbr(cond, body_b, exit);
                self.b.switch_to(exit);
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                self.ty_scopes.push();
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let header = self.b.add_block();
                let body_b = self.b.add_block();
                let latch = self.b.add_block();
                let exit = self.b.add_block();
                self.b.br(header);
                self.b.switch_to(header);
                match cond {
                    Some(c) => {
                        let cv = self.lower_cond(c);
                        self.b.condbr(cv, body_b, exit);
                    }
                    None => self.b.br(body_b),
                }
                self.b.switch_to(body_b);
                self.break_stack.push(exit);
                self.continue_stack.push(latch);
                self.lower_block(body);
                self.continue_stack.pop();
                self.break_stack.pop();
                if !self.b.is_terminated() {
                    self.b.br(latch);
                }
                self.b.switch_to(latch);
                if let Some(st) = step {
                    self.lower_stmt(st);
                }
                self.b.br(header);
                self.b.switch_to(exit);
                self.ty_scopes.pop();
                self.scopes.pop();
            }
            Stmt::Switch(e, cases, default) => {
                let sv = self.lower_expr(e);
                let exit = self.b.add_block();
                let default_b = if default.is_some() {
                    self.b.add_block()
                } else {
                    exit
                };
                let case_blocks: Vec<BlockId> =
                    cases.iter().map(|_| self.b.add_block()).collect();
                let case_pairs: Vec<(Value, BlockId)> = cases
                    .iter()
                    .zip(&case_blocks)
                    .map(|((v, _), &b)| (Value::const_int(Type::I64, *v), b))
                    .collect();
                self.b.switch(sv, default_b, case_pairs);
                self.break_stack.push(exit);
                for ((_, body), &cb) in cases.iter().zip(&case_blocks) {
                    self.b.switch_to(cb);
                    self.lower_block(body);
                    if !self.b.is_terminated() {
                        self.b.br(exit);
                    }
                }
                if let Some(d) = default {
                    self.b.switch_to(default_b);
                    self.lower_block(d);
                    if !self.b.is_terminated() {
                        self.b.br(exit);
                    }
                }
                self.break_stack.pop();
                self.b.switch_to(exit);
            }
            Stmt::Break => {
                let target = *self.break_stack.last().expect("sema missed stray break");
                self.b.br(target);
            }
            Stmt::Continue => {
                let target = *self
                    .continue_stack
                    .last()
                    .expect("sema missed stray continue");
                self.b.br(target);
            }
            Stmt::Return(v) => {
                let val = v.as_ref().map(|e| {
                    let et = self.expr_ty(e);
                    let v = self.lower_expr(e);
                    self.promote(v, et, self.ret)
                });
                self.b.ret(val);
            }
            Stmt::ExprStmt(e) => {
                self.lower_expr(e);
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }
}

/// Lowers a checked program to an IR module.
///
/// # Panics
///
/// Panics if the program does not type-check — run [`sema::check`] first.
///
/// # Examples
///
/// ```
/// use yali_ir::interp::{run, Val, ExecConfig};
/// let p = yali_minic::parse("int sq(int x) { return x * x; }")?;
/// yali_minic::check(&p)?;
/// let m = yali_minic::lower(&p);
/// let out = run(&m, "sq", &[Val::Int(7)], &[], &ExecConfig::default())?;
/// assert_eq!(out.ret, Some(Val::Int(49)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower(p: &Program) -> Module {
    let sigs = sema::signatures(p);
    let mut module = Module::new("minic");
    for (name, params, ret) in builtins() {
        module.declare(name, params.iter().map(|t| ir_scalar(*t)).collect(), ir_scalar(*ret));
    }
    for f in &p.funcs {
        let params: Vec<Type> = f.params.iter().map(|p| ir_scalar(p.ty)).collect();
        let mut b = FunctionBuilder::new(&f.name, params, ir_scalar(f.ret));
        let entry = b.add_block();
        b.switch_to(entry);
        let mut lo = Lowerer {
            b,
            sigs: &sigs,
            scopes: vec![HashMap::new()],
            ty_scopes: Scopes::new(),
            entry,
            entry_allocas: 0,
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            ret: f.ret,
        };
        lo.ty_scopes.push();
        // Parameters: scalars get stack slots (clang -O0 style); arrays are
        // used directly as pointers.
        for (i, param) in f.params.iter().enumerate() {
            if param.ty.is_scalar() {
                let ptr = lo.entry_alloca(ir_scalar(param.ty));
                lo.b.store(Value::Param(i as u32), ptr.clone());
                lo.declare(&param.name, Slot::Stack(ptr, param.ty), param.ty);
            } else {
                lo.declare(&param.name, Slot::Direct(Value::Param(i as u32)), param.ty);
            }
        }
        lo.lower_block(&f.body);
        // Implicit return when control can fall off the end.
        if !lo.b.is_terminated() {
            match f.ret {
                Ty::Void => lo.b.ret(None),
                Ty::Float => lo.b.ret(Some(Value::ConstFloat(0.0))),
                _ => lo.b.ret(Some(Value::const_int(Type::I64, 0))),
            }
        }
        lo.ty_scopes.pop();
        let mut func = lo.b.finish();
        yali_ir::cfg::prune_unreachable(&mut func);
        func.compact();
        module.add_function(func);
    }
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use yali_ir::interp::{run, ExecConfig, Outcome, Val};
    use yali_ir::verify_module;

    fn compile(src: &str) -> Module {
        let p = parse(src).expect("parse");
        check(&p).expect("sema");
        let m = lower(&p);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        m
    }

    fn exec(src: &str, func: &str, args: &[Val], inputs: &[Val]) -> Outcome {
        let m = compile(src);
        run(&m, func, args, inputs, &ExecConfig::default()).expect("run")
    }

    #[test]
    fn lowers_gcd() {
        let src = "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }";
        let out = exec(src, "gcd", &[Val::Int(48), Val::Int(36)], &[]);
        assert_eq!(out.ret, Some(Val::Int(12)));
    }

    #[test]
    fn parameters_live_in_stack_slots() {
        // clang -O0 style: each scalar parameter has an alloca + store.
        let m = compile("int id(int x) { return x; }");
        let f = m.function("id").unwrap();
        let ops: Vec<Op> = f.iter_insts().map(|(_, i)| f.inst(i).op).collect();
        assert!(ops.contains(&Op::Alloca));
        assert!(ops.contains(&Op::Store));
        assert!(ops.contains(&Op::Load));
    }

    #[test]
    fn for_loop_with_break_continue() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i == 7) { continue; }
                    if (i > 12) { break; }
                    s += i;
                }
                return s;
            }
        "#;
        // sum 0..=12 minus 7 = 78 - 7 = 71
        assert_eq!(exec(src, "f", &[Val::Int(100)], &[]).ret, Some(Val::Int(71)));
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let src = r#"
            int f(int n) {
                int hits = 0;
                if (n > 0 && 10 / n > 2) { hits = 1; }
                return hits;
            }
        "#;
        // n = 0 would divide by zero if && were strict.
        assert_eq!(exec(src, "f", &[Val::Int(0)], &[]).ret, Some(Val::Int(0)));
        assert_eq!(exec(src, "f", &[Val::Int(3)], &[]).ret, Some(Val::Int(1)));
    }

    #[test]
    fn arrays_and_helper_functions() {
        let src = r#"
            int sum(int a[], int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += a[i]; }
                return s;
            }
            int f() {
                int v[5];
                for (int i = 0; i < 5; i++) { v[i] = i * i; }
                return sum(v, 5);
            }
        "#;
        assert_eq!(exec(src, "f", &[], &[]).ret, Some(Val::Int(30)));
    }

    #[test]
    fn float_promotion_and_casts() {
        let src = "float f(int a, float b) { return a + b / 2; }";
        let out = exec(src, "f", &[Val::Int(3), Val::Float(5.0)], &[]);
        assert_eq!(out.ret, Some(Val::Float(5.5)));
        let src2 = "int g(float x) { return (int)(x * 2.0); }";
        assert_eq!(
            exec(src2, "g", &[Val::Float(3.25)], &[]).ret,
            Some(Val::Int(6))
        );
    }

    #[test]
    fn switch_statement() {
        let src = r#"
            int f(int x) {
                int r = 0;
                switch (x) {
                    case 1: r = 10; break;
                    case 2: r = 20; break;
                    default: r = -1;
                }
                return r;
            }
        "#;
        assert_eq!(exec(src, "f", &[Val::Int(1)], &[]).ret, Some(Val::Int(10)));
        assert_eq!(exec(src, "f", &[Val::Int(2)], &[]).ret, Some(Val::Int(20)));
        assert_eq!(exec(src, "f", &[Val::Int(3)], &[]).ret, Some(Val::Int(-1)));
    }

    #[test]
    fn do_while_executes_at_least_once() {
        let src = "int f(int n) { int c = 0; do { c++; } while (n > 100); return c; }";
        assert_eq!(exec(src, "f", &[Val::Int(0)], &[]).ret, Some(Val::Int(1)));
    }

    #[test]
    fn recursion() {
        let src = "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }";
        assert_eq!(exec(src, "fib", &[Val::Int(15)], &[]).ret, Some(Val::Int(610)));
    }

    #[test]
    fn io_program() {
        let src = r#"
            void main() {
                int n = read_int();
                int s = 0;
                for (int i = 1; i <= n; i++) { s += i; }
                print_int(s);
            }
        "#;
        let out = exec(src, "main", &[], &[Val::Int(10)]);
        assert_eq!(out.output, vec![Val::Int(55)]);
    }

    #[test]
    fn dead_code_after_return_is_dropped() {
        let src = "int f() { return 1; print_int(9); return 2; }";
        let out = exec(src, "f", &[], &[]);
        assert_eq!(out.ret, Some(Val::Int(1)));
        assert!(out.output.is_empty());
    }

    #[test]
    fn missing_return_yields_default() {
        let src = "int f(int x) { if (x > 0) { return 1; } }";
        assert_eq!(exec(src, "f", &[Val::Int(-5)], &[]).ret, Some(Val::Int(0)));
    }

    #[test]
    fn logical_value_materializes_as_int() {
        let src = "int f(int a, int b) { int r = a < b; return r + (a == b); }";
        assert_eq!(
            exec(src, "f", &[Val::Int(1), Val::Int(2)], &[]).ret,
            Some(Val::Int(1))
        );
        assert_eq!(
            exec(src, "f", &[Val::Int(2), Val::Int(2)], &[]).ret,
            Some(Val::Int(1))
        );
    }

    #[test]
    fn not_operator() {
        let src = "int f(int x) { return !x + !!x; }";
        assert_eq!(exec(src, "f", &[Val::Int(0)], &[]).ret, Some(Val::Int(1)));
        assert_eq!(exec(src, "f", &[Val::Int(7)], &[]).ret, Some(Val::Int(1)));
    }

    #[test]
    fn scalar_allocas_are_hoisted_to_entry() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { int t = i * 2; s += t; } return s; }";
        let m = compile(src);
        let f = m.function("f").unwrap();
        let entry = f.entry();
        let entry_allocas = f
            .block(entry)
            .insts
            .iter()
            .filter(|&&i| f.inst(i).op == Op::Alloca)
            .count();
        let total_allocas = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Alloca)
            .count();
        assert_eq!(entry_allocas, total_allocas);
        assert_eq!(total_allocas, 4); // n, s, i, t
        assert_eq!(exec(src, "f", &[Val::Int(5)], &[]).ret, Some(Val::Int(20)));
    }
}
