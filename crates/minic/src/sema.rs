//! Semantic analysis: scoping and type checking for MiniC.
//!
//! The rules mirror the C subset the dataset programs inhabit:
//!
//! - arithmetic between `int` and `float` promotes to `float`;
//! - `%`, shifts, bitwise and the logical operators are integer-only;
//! - comparisons and logical operators yield `int` (0/1);
//! - conditions accept any scalar (non-zero is true);
//! - array values are second-class: they can be indexed and passed to
//!   functions, nothing else;
//! - assignments and calls insert implicit `int` → `float` promotion but
//!   never the lossy reverse direction.

use crate::ast::*;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// The enclosing function.
    pub func: String,
    /// Description.
    pub msg: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.func, self.msg)
    }
}

impl Error for SemaError {}

/// A function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSig {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

/// Collects the signatures of all functions plus the runtime builtins.
pub fn signatures(p: &Program) -> HashMap<String, FuncSig> {
    let mut sigs: HashMap<String, FuncSig> = builtins()
        .iter()
        .map(|(n, ps, r)| {
            (
                n.to_string(),
                FuncSig {
                    params: ps.to_vec(),
                    ret: *r,
                },
            )
        })
        .collect();
    for f in &p.funcs {
        sigs.insert(
            f.name.clone(),
            FuncSig {
                params: f.params.iter().map(|p| p.ty).collect(),
                ret: f.ret,
            },
        );
    }
    sigs
}

/// A lexical scope stack mapping variable names to types.
#[derive(Debug, Default)]
pub struct Scopes {
    stack: Vec<HashMap<String, Ty>>,
}

impl Scopes {
    /// Creates an empty scope stack.
    pub fn new() -> Scopes {
        Scopes::default()
    }

    /// Enters a scope.
    pub fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Declares `name` in the innermost scope; `false` if already declared
    /// there.
    pub fn declare(&mut self, name: &str, ty: Ty) -> bool {
        self.stack
            .last_mut()
            .expect("no scope")
            .insert(name.to_string(), ty)
            .is_none()
    }

    /// Finds the innermost declaration of `name`.
    pub fn lookup(&self, name: &str) -> Option<Ty> {
        self.stack.iter().rev().find_map(|s| s.get(name).copied())
    }
}

/// Infers the type of an expression.
///
/// # Errors
///
/// Returns a [`SemaError`] (with an empty function name — callers fill it
/// in) when the expression is ill-typed.
pub fn expr_ty(
    e: &Expr,
    scopes: &Scopes,
    sigs: &HashMap<String, FuncSig>,
) -> Result<Ty, SemaError> {
    let err = |msg: String| SemaError {
        func: String::new(),
        msg,
    };
    match e {
        Expr::Int(_) => Ok(Ty::Int),
        Expr::Float(_) => Ok(Ty::Float),
        Expr::Var(n) => scopes
            .lookup(n)
            .ok_or_else(|| err(format!("use of undeclared variable {n}"))),
        Expr::Index(n, i) => {
            let at = scopes
                .lookup(n)
                .ok_or_else(|| err(format!("use of undeclared array {n}")))?;
            let elem = at
                .elem()
                .ok_or_else(|| err(format!("indexing non-array {n}: {at}")))?;
            let it = expr_ty(i, scopes, sigs)?;
            if it != Ty::Int {
                return Err(err(format!("array index must be int, got {it}")));
            }
            Ok(elem)
        }
        Expr::Unary(op, a) => {
            let at = expr_ty(a, scopes, sigs)?;
            match op {
                UnOp::Neg => {
                    if at.is_scalar() {
                        Ok(at)
                    } else {
                        Err(err(format!("negation of {at}")))
                    }
                }
                UnOp::Not => {
                    if at.is_scalar() {
                        Ok(Ty::Int)
                    } else {
                        Err(err(format!("logical not of {at}")))
                    }
                }
                UnOp::BitNot => {
                    if at == Ty::Int {
                        Ok(Ty::Int)
                    } else {
                        Err(err(format!("bitwise not of {at}")))
                    }
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let at = expr_ty(a, scopes, sigs)?;
            let bt = expr_ty(b, scopes, sigs)?;
            if !at.is_scalar() || !bt.is_scalar() {
                return Err(err(format!("operator {} on {at}, {bt}", op.symbol())));
            }
            if op.is_int_only() {
                if at != Ty::Int || bt != Ty::Int {
                    return Err(err(format!(
                        "operator {} requires int operands, got {at}, {bt}",
                        op.symbol()
                    )));
                }
                return Ok(Ty::Int);
            }
            if op.is_comparison() {
                return Ok(Ty::Int);
            }
            // Arithmetic: promote to float if either side is float.
            if at == Ty::Float || bt == Ty::Float {
                Ok(Ty::Float)
            } else {
                Ok(Ty::Int)
            }
        }
        Expr::Call(n, args) => {
            let sig = sigs
                .get(n)
                .ok_or_else(|| err(format!("call to unknown function {n}")))?;
            if args.len() != sig.params.len() {
                return Err(err(format!(
                    "{n} expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                )));
            }
            for (a, &pt) in args.iter().zip(&sig.params) {
                let at = expr_ty(a, scopes, sigs)?;
                let ok = at == pt || (at == Ty::Int && pt == Ty::Float);
                if !ok {
                    return Err(err(format!("argument of type {at} where {pt} expected")));
                }
            }
            Ok(sig.ret)
        }
        Expr::Cast(ty, a) => {
            let at = expr_ty(a, scopes, sigs)?;
            if !at.is_scalar() || !ty.is_scalar() {
                return Err(err(format!("cast from {at} to {ty}")));
            }
            Ok(*ty)
        }
    }
}

struct Checker<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    func: String,
    ret: Ty,
    loop_depth: usize,
    switch_depth: usize,
}

impl Checker<'_> {
    fn err(&self, msg: impl Into<String>) -> SemaError {
        SemaError {
            func: self.func.clone(),
            msg: msg.into(),
        }
    }

    fn ty(&self, e: &Expr, scopes: &Scopes) -> Result<Ty, SemaError> {
        expr_ty(e, scopes, self.sigs).map_err(|mut e| {
            e.func = self.func.clone();
            e
        })
    }

    fn check_cond(&self, e: &Expr, scopes: &Scopes) -> Result<(), SemaError> {
        let t = self.ty(e, scopes)?;
        if t.is_scalar() {
            Ok(())
        } else {
            Err(self.err(format!("condition of type {t}")))
        }
    }

    fn check_block(&mut self, b: &Block, scopes: &mut Scopes) -> Result<(), SemaError> {
        scopes.push();
        for s in &b.stmts {
            self.check_stmt(s, scopes)?;
        }
        scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt, scopes: &mut Scopes) -> Result<(), SemaError> {
        match s {
            Stmt::DeclScalar(n, ty, init) => {
                if !ty.is_scalar() {
                    return Err(self.err(format!("declaration of {n} with type {ty}")));
                }
                if let Some(e) = init {
                    let et = self.ty(e, scopes)?;
                    let ok = et == *ty || (et == Ty::Int && *ty == Ty::Float);
                    if !ok {
                        return Err(self.err(format!("initializing {ty} {n} with {et}")));
                    }
                }
                if !scopes.declare(n, *ty) {
                    return Err(self.err(format!("redeclaration of {n}")));
                }
            }
            Stmt::DeclArray(n, ty, size) => {
                if !ty.is_scalar() {
                    return Err(self.err(format!("array of {ty}")));
                }
                if self.ty(size, scopes)? != Ty::Int {
                    return Err(self.err(format!("array size of {n} is not int")));
                }
                let at = if *ty == Ty::Int {
                    Ty::IntArray
                } else {
                    Ty::FloatArray
                };
                if !scopes.declare(n, at) {
                    return Err(self.err(format!("redeclaration of {n}")));
                }
            }
            Stmt::Assign(lv, e) => {
                let lt = match lv {
                    LValue::Var(n) => scopes
                        .lookup(n)
                        .ok_or_else(|| self.err(format!("assignment to undeclared {n}")))?,
                    LValue::Index(n, i) => {
                        let at = scopes
                            .lookup(n)
                            .ok_or_else(|| self.err(format!("assignment to undeclared {n}")))?;
                        if self.ty(i, scopes)? != Ty::Int {
                            return Err(self.err("array index must be int"));
                        }
                        at.elem()
                            .ok_or_else(|| self.err(format!("indexing non-array {n}")))?
                    }
                };
                if !lt.is_scalar() {
                    return Err(self.err("assignment to array"));
                }
                let et = self.ty(e, scopes)?;
                let ok = et == lt || (et == Ty::Int && lt == Ty::Float);
                if !ok {
                    return Err(self.err(format!("assigning {et} to {lt} location")));
                }
            }
            Stmt::If(c, t, e) => {
                self.check_cond(c, scopes)?;
                self.check_block(t, scopes)?;
                if let Some(e) = e {
                    self.check_block(e, scopes)?;
                }
            }
            Stmt::While(c, b) => {
                self.check_cond(c, scopes)?;
                self.loop_depth += 1;
                self.check_block(b, scopes)?;
                self.loop_depth -= 1;
            }
            Stmt::DoWhile(b, c) => {
                self.loop_depth += 1;
                self.check_block(b, scopes)?;
                self.loop_depth -= 1;
                self.check_cond(c, scopes)?;
            }
            Stmt::For(init, cond, step, b) => {
                scopes.push();
                if let Some(i) = init {
                    self.check_stmt(i, scopes)?;
                }
                if let Some(c) = cond {
                    self.check_cond(c, scopes)?;
                }
                if let Some(st) = step {
                    self.check_stmt(st, scopes)?;
                }
                self.loop_depth += 1;
                self.check_block(b, scopes)?;
                self.loop_depth -= 1;
                scopes.pop();
            }
            Stmt::Switch(e, cases, default) => {
                if self.ty(e, scopes)? != Ty::Int {
                    return Err(self.err("switch scrutinee must be int"));
                }
                let mut seen = std::collections::HashSet::new();
                self.switch_depth += 1;
                for (v, b) in cases {
                    if !seen.insert(*v) {
                        self.switch_depth -= 1;
                        return Err(self.err(format!("duplicate case {v}")));
                    }
                    self.check_block(b, scopes)?;
                }
                if let Some(d) = default {
                    self.check_block(d, scopes)?;
                }
                self.switch_depth -= 1;
            }
            Stmt::Break => {
                if self.loop_depth == 0 && self.switch_depth == 0 {
                    return Err(self.err("break outside loop or switch"));
                }
            }
            Stmt::Continue => {
                if self.loop_depth == 0 {
                    return Err(self.err("continue outside loop"));
                }
            }
            Stmt::Return(v) => match (v, self.ret) {
                (None, Ty::Void) => {}
                (None, r) => return Err(self.err(format!("return without value in {r} function"))),
                (Some(_), Ty::Void) => {
                    return Err(self.err("return with value in void function"))
                }
                (Some(e), r) => {
                    let et = self.ty(e, scopes)?;
                    let ok = et == r || (et == Ty::Int && r == Ty::Float);
                    if !ok {
                        return Err(self.err(format!("returning {et} from {r} function")));
                    }
                }
            },
            Stmt::ExprStmt(e) => {
                self.ty(e, scopes)?;
            }
            Stmt::Block(b) => self.check_block(b, scopes)?,
        }
        Ok(())
    }
}

/// Type-checks a whole program.
///
/// # Errors
///
/// Returns the first [`SemaError`] encountered.
///
/// # Examples
///
/// ```
/// let p = yali_minic::parse("int f(int x) { return x + 1; }")?;
/// yali_minic::check(&p)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check(p: &Program) -> Result<(), SemaError> {
    let sigs = signatures(p);
    let mut names = std::collections::HashSet::new();
    for f in &p.funcs {
        if !names.insert(&f.name) {
            return Err(SemaError {
                func: f.name.clone(),
                msg: "duplicate function definition".into(),
            });
        }
        if builtins().iter().any(|(n, _, _)| *n == f.name) {
            return Err(SemaError {
                func: f.name.clone(),
                msg: "redefines a runtime builtin".into(),
            });
        }
        let mut checker = Checker {
            sigs: &sigs,
            func: f.name.clone(),
            ret: f.ret,
            loop_depth: 0,
            switch_depth: 0,
        };
        let mut scopes = Scopes::new();
        scopes.push();
        let mut pnames = std::collections::HashSet::new();
        for param in &f.params {
            if !pnames.insert(&param.name) {
                return Err(checker.err(format!("duplicate parameter {}", param.name)));
            }
            scopes.declare(&param.name, param.ty);
        }
        checker.check_block(&f.body, &mut scopes)?;
        scopes.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse(src).expect("parse"))
    }

    #[test]
    fn accepts_valid_programs() {
        check_src("int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }").unwrap();
        check_src("float avg(float a[], int n) { float s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; } return s / (float)n; }").unwrap();
        check_src("void main() { print_int(read_int() + 1); }").unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = check_src("int f() { return x; }").unwrap_err();
        assert!(e.msg.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_redeclaration_in_same_scope() {
        let e = check_src("int f() { int x = 1; int x = 2; return x; }").unwrap_err();
        assert!(e.msg.contains("redeclaration"), "{e}");
    }

    #[test]
    fn allows_shadowing_in_inner_scope() {
        check_src("int f() { int x = 1; { int x = 2; print_int(x); } return x; }").unwrap();
    }

    #[test]
    fn rejects_modulo_on_floats() {
        let e = check_src("float f(float x) { return x % 2.0; }").unwrap_err();
        assert!(e.msg.contains("%"), "{e}");
    }

    #[test]
    fn promotes_int_to_float() {
        check_src("float f(int x) { return x + 1.5; }").unwrap();
        check_src("float g(int x) { float y = x; return y; }").unwrap();
    }

    #[test]
    fn rejects_float_to_int_without_cast() {
        let e = check_src("int f(float x) { return x; }").unwrap_err();
        assert!(e.msg.contains("returning"), "{e}");
        check_src("int g(float x) { return (int)x; }").unwrap();
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check_src("void f() { break; }").unwrap_err();
        assert!(e.msg.contains("break"), "{e}");
    }

    #[test]
    fn allows_break_inside_switch() {
        check_src("void f(int x) { switch (x) { case 1: if (x > 0) { break; } print_int(1); } }")
            .unwrap();
    }

    #[test]
    fn rejects_continue_outside_loop() {
        let e = check_src("void f(int x) { switch (x) { case 1: continue; } }").unwrap_err();
        assert!(e.msg.contains("continue"), "{e}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let e = check_src("int f(int x) { return f(x, 1); }").unwrap_err();
        assert!(e.msg.contains("arguments"), "{e}");
    }

    #[test]
    fn rejects_unknown_callee() {
        let e = check_src("void f() { ghost(); }").unwrap_err();
        assert!(e.msg.contains("unknown"), "{e}");
    }

    #[test]
    fn rejects_duplicate_case() {
        let e =
            check_src("void f(int x) { switch (x) { case 1: print_int(1); case 1: print_int(2); } }")
                .unwrap_err();
        assert!(e.msg.contains("duplicate case"), "{e}");
    }

    #[test]
    fn rejects_array_misuse() {
        let e = check_src("int f(int a[]) { return a; }").unwrap_err();
        assert!(e.msg.contains("returning"), "{e}");
        let e2 = check_src("int f(int x) { return x[0]; }").unwrap_err();
        assert!(e2.msg.contains("non-array"), "{e2}");
    }

    #[test]
    fn rejects_redefined_builtin() {
        let e = check_src("int read_int() { return 0; }").unwrap_err();
        assert!(e.msg.contains("builtin"), "{e}");
    }

    #[test]
    fn rejects_duplicate_functions_and_params() {
        let e = check_src("int f() { return 1; } int f() { return 2; }").unwrap_err();
        assert!(e.msg.contains("duplicate function"), "{e}");
        let e2 = check_src("int g(int a, int a) { return a; }").unwrap_err();
        assert!(e2.msg.contains("duplicate parameter"), "{e2}");
    }
}
