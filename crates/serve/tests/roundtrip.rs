//! End-to-end tests over real localhost sockets: verdict identity with
//! direct `predict`, concurrent clients, admission control, and the
//! graceful shutdown drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use yali_ml::ModelKind;
use yali_serve::{
    train_tenants, BatcherConfig, Client, LiveConfig, Reply, Server, Tenants,
};

/// Tenants are deterministic in the seed, so training the same set twice
/// yields bit-identical models — the tests train one oracle copy locally
/// and compare wire verdicts against it.
const SEED: u64 = 77;
const CLASSES: usize = 4;
const PER_CLASS: usize = 6;

fn oracle() -> &'static Tenants {
    static ORACLE: OnceLock<Tenants> = OnceLock::new();
    ORACLE.get_or_init(|| train_tenants(&[ModelKind::Lr, ModelKind::Mlp], CLASSES, PER_CLASS, SEED))
}

/// Some query rows with the tenants' feature dimension: the training
/// corpus itself under a different embedding seed.
fn queries() -> Vec<Vec<f64>> {
    let corpus = yali_core::Corpus::poj(CLASSES, PER_CLASS, SEED);
    let all: Vec<&yali_core::Sample> = corpus.samples.iter().collect();
    yali_core::transform_all(&all, yali_core::Transformer::None, 3)
        .iter()
        .map(yali_embed::histogram)
        .collect()
}

/// A [`LiveConfig`] whose anomaly dumps land in a fresh per-test temp
/// directory: the overload test deliberately triggers the queue-overflow
/// dump, and that file must not pollute the checkout.
fn test_live_config() -> (LiveConfig, std::path::PathBuf) {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "yali_serve_roundtrip_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create dump dir");
    let cfg = LiveConfig {
        dump_dir: dir.clone(),
        ..LiveConfig::default()
    };
    (cfg, dir)
}

/// Starts a server on an ephemeral port in a background thread; returns
/// the address and the join handle (joined after `shutdown` to prove the
/// daemon actually exits).
fn start_server(cfg: BatcherConfig) -> (String, std::thread::JoinHandle<()>) {
    let (live, _dir) = test_live_config();
    start_server_live(cfg, live)
}

fn start_server_live(
    cfg: BatcherConfig,
    live: LiveConfig,
) -> (String, std::thread::JoinHandle<()>) {
    let tenants = train_tenants(&[ModelKind::Lr, ModelKind::Mlp], CLASSES, PER_CLASS, SEED);
    let server = Server::bind_with("127.0.0.1:0", tenants, cfg, live).expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

#[test]
fn served_verdicts_are_bit_identical_to_direct_predict() {
    let (addr, handle) = start_server(BatcherConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.ping().unwrap(), Reply::Ok);

    let oracle = oracle();
    for (mi, (_, clf)) in oracle.models.iter().enumerate() {
        for q in queries() {
            let want = clf.predict(&q) as u32;
            match client.classify(mi as u8, q).unwrap() {
                Reply::Label(got) => assert_eq!(got, want, "model {mi}"),
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }

    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_each_get_their_own_verdicts() {
    // A short deadline plus many clients exercises real coalescing: the
    // dispatcher sees multi-row batches, and every row must still come
    // back on the right connection with the right label.
    let (addr, handle) = start_server(BatcherConfig {
        max_batch: 8,
        deadline_ns: 500_000,
        queue_cap: 1024,
    });
    let qs = queries();
    let workers: Vec<_> = (0..6)
        .map(|w| {
            let addr = addr.clone();
            let qs = qs.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mi = w % 2; // alternate the two models across workers
                let (_, clf) = &oracle().models[mi];
                for (i, q) in qs.iter().enumerate() {
                    if i % 6 != w % 6 {
                        continue; // disjoint slices keep the test quick
                    }
                    let want = clf.predict(q) as u32;
                    match client.classify(mi as u8, q.clone()).unwrap() {
                        Reply::Label(got) => assert_eq!(got, want, "worker {w} query {i}"),
                        other => panic!("worker {w}: unexpected reply {other:?}"),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    handle.join().unwrap();
}

#[test]
fn scan_verdicts_match_the_direct_scanner() {
    let (addr, handle) = start_server(BatcherConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let scanner = oracle().scanner.as_ref().unwrap();

    let benign_src = "int f(int a) { return a * a + 3; }";
    let module = yali_minic::compile(benign_src).unwrap();
    let want_malware = scanner.is_malware(&module);
    let want_ratio = scanner.match_ratio(&module);
    match client.scan(benign_src).unwrap() {
        Reply::Scan { malware, ratio } => {
            assert_eq!(malware, want_malware);
            assert_eq!(ratio.to_bits(), want_ratio.to_bits(), "ratio must be bit-identical");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // Garbage source is a BadRequest, not a hang or a disconnect.
    match client.scan("int { nonsense").unwrap() {
        Reply::BadRequest(_) => {}
        other => panic!("unexpected reply {other:?}"),
    }

    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    handle.join().unwrap();
}

#[test]
fn malformed_requests_are_refused_not_fatal() {
    let (addr, handle) = start_server(BatcherConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    // Unknown model index.
    match client.classify(250, queries()[0].clone()).unwrap() {
        Reply::UnknownModel => {}
        other => panic!("unexpected reply {other:?}"),
    }
    // Wrong feature dimension.
    match client.classify(0, vec![1.0, 2.0]).unwrap() {
        Reply::BadRequest(reason) => assert!(reason.contains("dimension"), "{reason}"),
        other => panic!("unexpected reply {other:?}"),
    }
    // The connection survives both refusals.
    assert_eq!(client.ping().unwrap(), Reply::Ok);

    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    handle.join().unwrap();
}

#[test]
fn overload_refuses_loudly_and_shutdown_drains_the_queue() {
    // queue_cap 1 and an hour-long deadline: the first request parks in
    // the batcher, the second must be refused as overloaded, and the
    // parked one must still be answered by the shutdown drain.
    let (addr, handle) = start_server(BatcherConfig {
        max_batch: 32,
        deadline_ns: 3_600_000_000_000,
        queue_cap: 1,
    });
    let q = queries()[0].clone();
    let want = oracle().models[0].1.predict(&q) as u32;

    let parked = {
        let addr = addr.clone();
        let q = q.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.classify(0, q).unwrap()
        })
    };
    // Wait until the parked request occupies the queue.
    let mut client = Client::connect(&addr).expect("connect");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let queued = match client.stats().unwrap() {
            Reply::Stats(text) => text
                .lines()
                .find_map(|l| l.strip_prefix("queued "))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0),
            other => panic!("unexpected reply {other:?}"),
        };
        if queued == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "parked request never reached the queue"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    match client.classify(0, q).unwrap() {
        Reply::Overloaded => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Graceful drain: shutdown answers the parked request with the real
    // verdict (not an error) before the daemon exits.
    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    assert_eq!(parked.join().unwrap(), Reply::Label(want));
    handle.join().unwrap();
}

#[test]
fn metrics_reflect_served_traffic_and_dump_trace_is_prof_ready() {
    let (addr, handle) = start_server(BatcherConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    for q in queries().into_iter().take(8) {
        match client.classify(0, q).unwrap() {
            Reply::Label(_) => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // The window is fed *after* each reply frame goes out, so the last
    // row may not be visible to an immediate metrics call: poll briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let m = loop {
        let m = match client.metrics().unwrap() {
            Reply::Metrics(m) => m,
            other => panic!("unexpected reply {other:?}"),
        };
        if m.window_count >= 8 {
            break m;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "served rows never reached the live window: {m:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert!(m.requests >= 9, "8 classifies + metrics: {m:?}");
    assert!(m.window_ns > 0);
    // Lanes are the roster in order, then the scan lane.
    let names: Vec<&str> = m.lanes.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, ["lr", "mlp", "scan"]);
    let lr = &m.lanes[0];
    assert!(lr.window_count >= 8, "{lr:?}");
    assert!(lr.p50_ns.is_some() && lr.p99_ns.is_some());
    assert!(lr.p50_ns <= lr.p99_ns);
    assert!(lr.qps > 0.0);
    // Idle lanes answer None, never a garbage zero quantile.
    let mlp = &m.lanes[1];
    if mlp.window_count == 0 {
        assert_eq!(mlp.p99_ns, None);
        assert_eq!(mlp.qps, 0.0);
    }
    // Global quantiles exist and bound the lane's.
    assert!(m.p99_ns.is_some());
    assert!(m.recorder_events > 0, "the daemon is always instrumented");

    // The flight dump must satisfy the strict parser and feed the
    // standard views — that is the whole point of the recorder.
    let dump = match client.dump_trace().unwrap() {
        Reply::Trace(jsonl) => jsonl,
        other => panic!("unexpected reply {other:?}"),
    };
    let trace = yali_prof::parse_trace(&dump).expect("flight dump must parse strictly");
    assert_eq!(trace.recorder.len(), 1);
    let profile = yali_prof::profile(&trace);
    assert!(
        profile.labels.iter().any(|r| r.label == "serve.dispatch"),
        "dispatch spans must be in the flight dump"
    );

    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    handle.join().unwrap();
}

#[test]
fn slo_breach_auto_dumps_a_parseable_flight_file() {
    // A 1 ns SLO: the first answered batch breaches it, so serving any
    // request must produce exactly one flight dump (cooldown swallows
    // repeats) in the configured directory.
    let (live, dir) = test_live_config();
    let live = LiveConfig {
        slo_p99_ns: Some(1),
        ..live
    };
    let (addr, handle) = start_server_live(BatcherConfig::default(), live);
    let mut client = Client::connect(&addr).expect("connect");
    for q in queries().into_iter().take(3) {
        client.classify(0, q).unwrap();
    }

    // The dump is written by the dispatcher after the replies; poll.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let dump_path = loop {
        let found = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with("yali-serve-flight-slo-p99-")
            });
        if let Some(e) = found {
            break e.path();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "SLO breach never produced a flight dump in {}",
            dir.display()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let text = std::fs::read_to_string(&dump_path).unwrap();
    let trace = yali_prof::parse_trace(&text).expect("auto-dump must parse strictly");
    assert_eq!(trace.recorder.len(), 1);

    assert_eq!(client.shutdown().unwrap(), Reply::Ok);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
