//! Property tests for the batcher core (satellite of the serving PR).
//!
//! The batcher is pure and clock-free, so these tests drive arbitrary
//! arrival orders and clock schedules through it and check the serving
//! contract exhaustively:
//!
//! * every admitted request is answered exactly once, in FIFO order per
//!   lane, and batches never mix lanes or exceed `max_batch`;
//! * `offer` refuses exactly when the global queue is at `queue_cap`;
//! * a dispatch trigger tells the truth (`Full` batches are full,
//!   `Deadline` batches really aged past the deadline);
//! * routing queries through the batcher + `predict_batch_refs` yields
//!   verdicts bit-identical to a plain loop of `predict` — the serving
//!   invariant, minus the sockets.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use yali_ml::{ModelKind, TrainConfig, VectorClassifier};
use yali_serve::{Batcher, BatcherConfig, Trigger};

/// One step of a simulated serving schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Offer one item into `lane`, then advance the clock by `dt_ns`.
    Offer { lane: u32, dt_ns: u64 },
    /// Advance the clock, then attempt one ready dispatch.
    Tick { dt_ns: u64 },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..4, 0u64..3_000_000u64).prop_map(|(lane, dt_ns)| Op::Offer { lane, dt_ns }),
            (0u32..4, 0u64..3_000_000u64).prop_map(|(lane, dt_ns)| Op::Offer { lane, dt_ns }),
            (0u32..4, 0u64..3_000_000u64).prop_map(|(lane, dt_ns)| Op::Offer { lane, dt_ns }),
            (0u64..3_000_000u64).prop_map(|dt_ns| Op::Tick { dt_ns }),
        ],
        1..80,
    )
}

/// An admitted item: its admission index (global arrival order) and lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Item {
    seq: usize,
    lane: u32,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exactly-once, per-lane FIFO, lane purity, the size cap, the
    /// admission cap, and truthful triggers — one schedule, all checked.
    #[test]
    fn schedules_uphold_every_batching_invariant(
        ops in ops_strategy(),
        max_batch in 1usize..6,
        deadline_ns in 1u64..2_000_000,
        queue_cap in 1usize..12,
    ) {
        let cfg = BatcherConfig { max_batch, deadline_ns, queue_cap };
        let mut b: Batcher<Item> = Batcher::new(cfg);
        let mut now: u64 = 0;
        let mut seq = 0usize;
        let mut admitted: Vec<Item> = Vec::new();
        let mut popped: Vec<Item> = Vec::new();

        let check_batch = |batch: &yali_serve::Batch<Item>, now: u64| {
            prop_assert!(batch.items.len() <= max_batch, "batch exceeds max_batch");
            prop_assert!(!batch.items.is_empty(), "empty batch dispatched");
            for p in &batch.items {
                prop_assert_eq!(p.item.lane, batch.lane, "lane mixing");
            }
            match batch.trigger {
                Trigger::Full => prop_assert_eq!(
                    batch.items.len(), max_batch,
                    "Full trigger on an underfull batch"
                ),
                Trigger::Deadline => {
                    let oldest = batch.items[0].enqueued_ns;
                    prop_assert!(
                        now.saturating_sub(oldest) >= deadline_ns,
                        "Deadline trigger before the deadline"
                    );
                }
                Trigger::Drain => {}
            }
            Ok(())
        };

        for op in &ops {
            match *op {
                Op::Offer { lane, dt_ns } => {
                    let item = Item { seq, lane };
                    let accepted = b.offer(lane, item, now);
                    prop_assert_eq!(
                        accepted,
                        admitted.len() - popped.len() < queue_cap,
                        "offer must refuse exactly at the cap"
                    );
                    if accepted {
                        admitted.push(item);
                        seq += 1;
                    }
                    now += dt_ns;
                }
                Op::Tick { dt_ns } => {
                    now += dt_ns;
                    if let Some(batch) = b.pop_ready(now) {
                        check_batch(&batch, now)?;
                        popped.extend(batch.items.iter().map(|p| p.item));
                    }
                }
            }
        }
        // Shutdown drain: everything still queued comes out.
        while let Some(batch) = b.pop_any() {
            check_batch(&batch, now)?;
            popped.extend(batch.items.iter().map(|p| p.item));
        }
        prop_assert!(b.is_empty());

        // Exactly once, global: same multiset, and since seqs are unique,
        // same set.
        let mut sorted = popped.clone();
        sorted.sort_by_key(|i| i.seq);
        prop_assert_eq!(&sorted, &admitted, "every admitted item pops exactly once");

        // FIFO per lane: each lane's pop order is ascending in seq.
        let mut per_lane: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for i in &popped {
            per_lane.entry(i.lane).or_default().push(i.seq);
        }
        for (lane, seqs) in per_lane {
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "lane {} popped out of order: {:?}", lane, seqs
            );
        }
    }

    /// `next_deadline_ns` is the true earliest instant at which
    /// `pop_ready` has work: nothing pops just before it, something pops
    /// at it.
    #[test]
    fn next_deadline_is_tight(
        lanes in proptest::collection::vec((0u32..3, 0u64..1_000_000), 1..10),
        deadline_ns in 1u64..1_000_000,
    ) {
        let cfg = BatcherConfig { max_batch: 64, deadline_ns, queue_cap: 1024 };
        let mut b: Batcher<usize> = Batcher::new(cfg);
        let mut now = 0u64;
        for (i, &(lane, dt)) in lanes.iter().enumerate() {
            prop_assert!(b.offer(lane, i, now));
            now += dt;
        }
        let at = b.next_deadline_ns().expect("non-empty batcher has a deadline");
        if at > 0 {
            prop_assert!(b.pop_ready(at - 1).is_none(), "popped before the deadline");
        }
        prop_assert!(b.pop_ready(at).is_some(), "nothing popped at the deadline");
    }
}

/// A small deterministic classifier shared by the verdict-identity tests
/// (training once keeps the 256-case runs fast).
fn oracle() -> &'static (VectorClassifier, usize) {
    static MODEL: OnceLock<(VectorClassifier, usize)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let dim = 6;
        // A fixed, synthetic-but-nontrivial training set: three classes
        // of rows clustered by which third of the vector carries mass.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            let mut row = vec![0.25; dim];
            row[class * 2] = 2.0 + (i as f64) * 0.125;
            row[class * 2 + 1] = 1.0 - (i as f64) * 0.0625;
            x.push(row);
            y.push(class);
        }
        let clf = VectorClassifier::fit(ModelKind::Lr, &x, &y, 3, &TrainConfig::default());
        (clf, dim)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The serving invariant, socket-free: arbitrary queries arriving in
    /// arbitrary bursts, coalesced by the batcher and classified with
    /// `predict_batch_refs`, produce verdicts bit-identical to a plain
    /// per-query `predict` loop.
    #[test]
    fn batched_verdicts_equal_loop_of_predict(
        rows in proptest::collection::vec(
            proptest::collection::vec(-4.0f64..4.0, 6..7),
            1..40,
        ),
        gaps in proptest::collection::vec(0u64..4_000_000u64, 1..40),
        max_batch in 1usize..8,
        deadline_ns in 1u64..3_000_000,
    ) {
        let (clf, _) = oracle();
        let want: Vec<usize> = rows.iter().map(|r| clf.predict(r)).collect();

        let cfg = BatcherConfig { max_batch, deadline_ns, queue_cap: 4096 };
        let mut b: Batcher<(usize, Vec<f64>)> = Batcher::new(cfg);
        let mut now = 0u64;
        let mut got: Vec<Option<usize>> = vec![None; rows.len()];
        let dispatch = |batch: yali_serve::Batch<(usize, Vec<f64>)>,
                            got: &mut Vec<Option<usize>>| {
            let (ids, feats): (Vec<usize>, Vec<Vec<f64>>) =
                batch.items.into_iter().map(|p| p.item).unzip();
            let refs: Vec<&[f64]> = feats.iter().map(Vec::as_slice).collect();
            let labels = clf.predict_batch_refs(&refs, 1);
            for (id, label) in ids.into_iter().zip(labels) {
                prop_assert!(got[id].is_none(), "request {} answered twice", id);
                got[id] = Some(label);
            }
            Ok(())
        };
        for (i, row) in rows.iter().enumerate() {
            prop_assert!(b.offer(0, (i, row.clone()), now));
            now += gaps[i % gaps.len()];
            while let Some(batch) = b.pop_ready(now) {
                dispatch(batch, &mut got)?;
            }
        }
        while let Some(batch) = b.pop_any() {
            dispatch(batch, &mut got)?;
        }
        let got: Vec<usize> = got
            .into_iter()
            .map(|g| g.expect("every request answered"))
            .collect();
        prop_assert_eq!(got, want, "served verdicts must equal loop-of-predict");
    }
}
