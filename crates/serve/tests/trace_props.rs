//! Property tests for the distributed-tracing plumbing (satellite of the
//! fleet-observability PR):
//!
//! * trace-context derivation is collision-free across the request ids of
//!   one connection (the mixing function is bijective per seed, so two
//!   requests can never share a trace id);
//! * the protocol's trace-context extension survives an encode/decode
//!   round trip bit-exactly, for every request shape, without disturbing
//!   the request payload itself;
//! * merging arbitrary per-process captures re-satisfies the strict
//!   `yali-prof` parser: lanes stay disjoint, spans are conserved, and a
//!   re-merge of the merged JSONL is a fixed point.

use std::collections::HashSet;

use proptest::prelude::*;

use yali_obs::TraceContext;
use yali_serve::protocol::{decode_request, encode_request_traced};
use yali_serve::Request;

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::DumpTrace),
        Just(Request::Shutdown),
        (0u8..=u8::MAX, proptest::collection::vec(0u64..=u64::MAX, 0..12)).prop_map(
            |(model, bits)| Request::Classify {
                model,
                features: bits.into_iter().map(f64::from_bits).collect(),
            }
        ),
        proptest::collection::vec(0x20u8..0x7f, 0..40).prop_map(|bytes| Request::Scan {
            source: String::from_utf8(bytes).expect("printable ASCII"),
        }),
    ]
}

proptest! {
    /// Distinct request ids on one connection derive distinct trace ids,
    /// for any seed: the stream multiplier is odd and the finalizer is a
    /// bijection, so the map `id -> trace_id` is injective per seed.
    #[test]
    fn trace_ids_are_unique_per_request_within_a_connection(
        seed in 0u64..=u64::MAX,
        first_id in 0u64..=u64::MAX,
        n in 1usize..256,
    ) {
        let mut seen = HashSet::with_capacity(n);
        for i in 0..n as u64 {
            let ctx = TraceContext::derive(seed, first_id.wrapping_add(i));
            prop_assert!(
                seen.insert(ctx.trace_id),
                "trace id {:#018x} repeated within one connection",
                ctx.trace_id
            );
        }
    }

    /// A trace context rides the wire bit-exactly: id, trace id, and
    /// parent span all survive, and stripping the context reproduces the
    /// exact untraced encoding (the extension is purely additive).
    #[test]
    fn trace_context_survives_the_serve_round_trip_bit_exactly(
        id in 0u64..=u64::MAX,
        trace_id in 0u64..=u64::MAX,
        parent_span in 0u64..=u64::MAX,
        req in request_strategy(),
    ) {
        let ctx = TraceContext { trace_id, parent_span };
        let traced = encode_request_traced(id, &req, Some(ctx));
        let plain = encode_request_traced(id, &req, None);
        prop_assert_eq!(traced.len(), plain.len() + 16, "extension is exactly 16 bytes");

        let (got_id, got_req, got_ctx) = decode_request(&traced)
            .map_err(|e| TestCaseError::fail(format!("decode traced: {e}")))?;
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_ctx, Some(ctx));
        // Bit-exactness of the request body, NaN payloads included:
        // compare re-encodings instead of decoded values.
        prop_assert_eq!(encode_request_traced(got_id, &got_req, None), plain);

        let (plain_id, _, plain_ctx) = decode_request(&plain)
            .map_err(|e| TestCaseError::fail(format!("decode plain: {e}")))?;
        prop_assert_eq!(plain_id, id);
        prop_assert_eq!(plain_ctx, None);
    }
}

/// One synthetic process capture: a preamble plus `spans` sequential
/// top-level spans on one thread, some carrying a trace context.
fn synthetic_capture(
    role: &str,
    pid: u64,
    unix_base_ns: u64,
    spans: &[(u64, u64, bool)], // (gap_ns, dur_ns, traced)
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut t = 100u64;
    let _ = writeln!(
        out,
        "{{\"ev\":\"preamble\",\"tid\":1,\"t_ns\":{t},\"pid\":{pid},\"role\":\"{role}\",\
         \"unix_ns\":\"{unix_base_ns:#018x}\"}}"
    );
    for (seq, (gap_ns, dur_ns, traced)) in spans.iter().enumerate() {
        t += gap_ns;
        let ctx = if *traced {
            format!(
                ",\"trace\":\"{:#018x}\",\"parent\":\"{:#018x}\"",
                pid.wrapping_mul(0x1_0001).wrapping_add(seq as u64),
                seq as u64
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{{\"ev\":\"open\",\"span\":\"prop.span\",\"tid\":1,\"seq\":{seq},\"depth\":0,\
             \"t_ns\":{t}{ctx}}}"
        );
        t += dur_ns;
        let _ = writeln!(
            out,
            "{{\"ev\":\"close\",\"span\":\"prop.span\",\"tid\":1,\"seq\":{seq},\"depth\":0,\
             \"t_ns\":{t},\"dur_ns\":{dur_ns}}}"
        );
    }
    out
}

proptest! {
    /// Stitching arbitrary process captures yields a trace the strict
    /// parser accepts again, with every span conserved — and re-merging
    /// the merged JSONL is a fixed point (preambles survive re-stamping).
    #[test]
    fn merged_traces_re_satisfy_the_strict_parser(
        shards in proptest::collection::vec(
            proptest::collection::vec((0u64..10_000, 1u64..100_000, any::<bool>()), 1..6),
            1..4,
        ),
        skew_ns in proptest::collection::vec(0u64..5_000_000, 4..5),
    ) {
        let base = 10_000_000u64;
        let inputs: Vec<(String, yali_prof::Trace)> = shards
            .iter()
            .enumerate()
            .map(|(i, spans)| {
                let text = synthetic_capture(
                    "worker",
                    40 + i as u64,
                    base + skew_ns[i % skew_ns.len()],
                    spans,
                );
                let trace = yali_prof::parse_trace(&text)
                    .unwrap_or_else(|e| panic!("synthetic capture must parse: {e}"));
                (format!("shard{i}.jsonl"), trace)
            })
            .collect();
        let want_spans: usize = inputs.iter().map(|(_, t)| t.n_spans).sum();

        let merged = yali_prof::merge_traces(inputs);
        prop_assert_eq!(merged.processes.len(), shards.len());
        let jsonl = yali_prof::to_jsonl_merged(&merged);
        let reparsed = yali_prof::parse_trace(&jsonl)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reparsed.n_spans, want_spans, "merging conserves spans");

        // Lanes must not collide: every (original) thread lands on its
        // own remapped tid.
        let tids: HashSet<u64> = reparsed.tids().into_iter().collect();
        prop_assert_eq!(tids.len(), shards.len(), "one distinct tid per process lane");

        // Fixed point up to thread renumbering: the re-stamped preamble
        // handshake makes a second merge need no clock shift, and every
        // span survives it.
        let again = yali_prof::merge_traces(vec![("merged.jsonl".to_string(), reparsed)]);
        prop_assert_eq!(again.processes[0].offset_ns, 0);
        let re_reparsed = yali_prof::parse_trace(&yali_prof::to_jsonl_merged(&again))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(re_reparsed.n_spans, want_spans);
    }
}
