//! # yali-serve
//!
//! Classification-as-a-service: a long-lived TCP daemon that puts the
//! engine's batched inference wins (GEMM chunk kernels, the `yali-par`
//! pool) online for concurrent single-query clients.
//!
//! The problem it solves: `predict_batch` is ~4x cheaper per row than a
//! `predict` loop, but only a caller already holding a full `Vec` of
//! queries can use it. A fleet of clients each holding *one* query gets
//! the serial price — unless something coalesces them. This crate is that
//! something: concurrent in-flight requests are merged into
//! [`yali_ml::INFER_CHUNK`]-sized batches on a deadline ("dispatch at 32
//! rows or 2 ms, whichever first") and dispatched through
//! `predict_batch`, with each verdict streamed back on its own
//! connection.
//!
//! The correctness invariant is absolute: **a served verdict is
//! bit-identical to a direct `predict` call for the same model and
//! input**, regardless of how requests were coalesced. This holds
//! because features travel bit-exact (`f64::to_le_bytes`), and because
//! `predict_batch`'s chunk decomposition is a function of batch length
//! only (PR 3's contract) — the batcher never reorders within a lane and
//! the chunk kernels are bit-stable against batch composition.
//!
//! Module map: [`protocol`] (framing + codecs), [`batcher`] (the pure
//! deadline/size state machine), [`server`] (daemon threads), [`client`]
//! (blocking caller). The first tenants are the six vector classifiers
//! and the signature anti-virus ([`yali_core::SignatureScanner`], the
//! fig16 stand-in) — an antivirus verdict API.
//!
//! # Environment knobs
//!
//! * `YALI_SERVE_QUEUE` — admission cap (rows across all lanes) before
//!   requests are refused as `overloaded`; default 1024.
//! * `YALI_SERVE_DEADLINE_US` — the batching deadline in microseconds;
//!   default 2000 (2 ms).
//! * `YALI_SERVE_SLO_P99_MS` — a windowed-p99 latency SLO in
//!   milliseconds; when the live p99 over the trailing window exceeds
//!   it, the daemon auto-dumps the flight recorder to a JSONL file.
//!   Unset means the trigger is off (queue overflow still dumps).
//! * `YALI_SERVE_DUMP_DIR` — directory for anomaly-triggered flight
//!   dumps; default the daemon's working directory.
//!
//! All parse with the same warn-once discipline as `YALI_THREADS`
//! (through [`yali_obs::env_once`]): a set-but-garbage value warns once
//! on stderr and falls back to the default.

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod live;
pub mod protocol;
pub mod server;

use yali_core::{MalwareCorpus, SignatureScanner};
use yali_ml::{ModelKind, TrainConfig};
use yali_obs::{EnvVar, WarnOnce};

pub use batcher::{Batch, Batcher, BatcherConfig, Pending, Trigger};
pub use client::Client;
pub use live::{live_config_from_env, LiveConfig};
pub use protocol::{LaneMetrics, Metrics, Reply, Request};
pub use server::{Server, Tenants, SCAN_LANE};

/// Parses a positive integer knob value (`YALI_SERVE_QUEUE`,
/// `YALI_SERVE_DEADLINE_US`). Surrounding whitespace is tolerated; zero,
/// blanks, and non-numbers are [`EnvVar::Invalid`].
pub fn parse_positive(v: Option<&str>) -> EnvVar<u64> {
    match v {
        None => EnvVar::Unset,
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(n) if n >= 1 => EnvVar::Value(n),
            _ => EnvVar::Invalid,
        },
    }
}

/// The admission cap from `YALI_SERVE_QUEUE` (default 1024). A
/// set-but-invalid value warns once and uses the default.
pub fn queue_cap_from_env() -> usize {
    static ONCE: WarnOnce = WarnOnce::new();
    yali_obs::env_once(
        "YALI_SERVE_QUEUE",
        &ONCE,
        "is not a positive integer; using the default queue cap of 1024",
        parse_positive,
    )
    .map_or(1024, |n| n as usize)
}

/// The batching deadline from `YALI_SERVE_DEADLINE_US` in microseconds
/// (default 2000 = 2 ms), returned in nanoseconds. A set-but-invalid
/// value warns once and uses the default.
pub fn deadline_ns_from_env() -> u64 {
    static ONCE: WarnOnce = WarnOnce::new();
    yali_obs::env_once(
        "YALI_SERVE_DEADLINE_US",
        &ONCE,
        "is not a positive microsecond count; using the default 2 ms deadline",
        parse_positive,
    )
    .map_or(2_000_000, |us| us.saturating_mul(1_000))
}

/// The serving batch policy: `INFER_CHUNK` rows or the environment's
/// deadline, whichever first, under the environment's admission cap.
pub fn config_from_env() -> BatcherConfig {
    BatcherConfig {
        max_batch: yali_ml::INFER_CHUNK,
        deadline_ns: deadline_ns_from_env(),
        queue_cap: queue_cap_from_env(),
    }
}

/// Trains the default tenant set for a daemon: the requested classifiers
/// on a POJ-style corpus (through `fit_vector_cached`, so a process with
/// `YALI_STORE` attached loads the serialized models read-through from
/// disk instead of retraining), plus the signature anti-virus built from
/// a malware corpus — the fig16 stand-in as the verdict API's first
/// tenant.
pub fn train_tenants(
    kinds: &[ModelKind],
    classes: usize,
    per_class: usize,
    seed: u64,
) -> Tenants {
    let _span = yali_obs::span!("serve.train_tenants");
    let corpus = yali_core::Corpus::poj(classes, per_class, seed);
    let (train, _) = corpus.split(0.8, 7);
    let x: Vec<Vec<f64>> = yali_core::transform_all(&train, yali_core::Transformer::None, 1)
        .iter()
        .map(yali_embed::histogram)
        .collect();
    let y: Vec<usize> = train.iter().map(|s| s.class).collect();
    let n_features = x.first().map_or(0, Vec::len);
    let models = kinds
        .iter()
        .map(|&k| {
            let clf = yali_core::fit_vector_cached(
                k,
                &x,
                &y,
                corpus.n_classes,
                &TrainConfig::default(),
            );
            (k.name().to_string(), clf)
        })
        .collect();

    let mal = MalwareCorpus::build(6, 2, seed ^ 0xAB);
    let mal_mods: Vec<yali_ir::Module> = mal.train_malware.iter().map(yali_minic::lower).collect();
    let ben_mods: Vec<yali_ir::Module> = mal.train_benign.iter().map(yali_minic::lower).collect();
    let scanner = SignatureScanner::build(&mal_mods, &ben_mods);

    Tenants {
        models,
        n_features,
        scanner: Some(scanner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_knobs_parse_with_the_shared_discipline() {
        assert_eq!(parse_positive(None), EnvVar::<u64>::Unset);
        assert_eq!(parse_positive(Some("64")), EnvVar::Value(64));
        assert_eq!(parse_positive(Some(" 2000 ")), EnvVar::Value(2000));
        for garbage in ["", "  ", "0", "-1", "many", "1.5"] {
            assert_eq!(parse_positive(Some(garbage)), EnvVar::Invalid, "{garbage:?}");
        }
    }

    #[test]
    fn env_defaults_apply_when_unset() {
        // The suite never sets these variables, so the defaults rule.
        assert_eq!(queue_cap_from_env(), 1024);
        assert_eq!(deadline_ns_from_env(), 2_000_000);
        let cfg = config_from_env();
        assert_eq!(cfg.max_batch, yali_ml::INFER_CHUNK);
    }
}
