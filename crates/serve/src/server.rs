//! The daemon: accept loop, per-connection readers, and the batching
//! dispatcher.
//!
//! Threading model — three roles, one shared [`Batcher`]:
//!
//! * the **accept loop** (the thread that called [`Server::run`]) hands
//!   each connection to a detached reader thread;
//! * a **reader** per connection decodes frames and either answers
//!   immediately (ping, stats, malformed input, overload) or enqueues a
//!   [`Job`] into the batcher and wakes the dispatcher;
//! * one **dispatcher** thread sleeps until the earliest lane deadline
//!   (or a wake from `offer`), pops ready batches, runs the model, and
//!   writes each verdict back through its request's connection.
//!
//! Responses are written under a per-connection mutex, so a verdict
//! dispatched from the batcher never interleaves bytes with an immediate
//! reply from the reader. Shutdown is graceful by construction: the
//! `SHUTDOWN` reader flips the flag (new work is refused as
//! `overloaded`), unblocks the accept loop with a loopback connection,
//! and the dispatcher drains every queued row — answering it — before
//! [`Server::run`] returns.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use yali_core::SignatureScanner;
use yali_ml::VectorClassifier;
use yali_obs::TraceContext;

use crate::batcher::{Batch, Batcher, BatcherConfig, Trigger};
use crate::live::{Live, LiveConfig};
use crate::protocol::{self, Reply, Request};

/// The lane the signature scanner batches on; classifier lanes are the
/// model's roster index (a `u8`, so no collision is possible).
pub const SCAN_LANE: u32 = u32::MAX;

/// What the daemon serves: a roster of trained classifiers (one batching
/// lane each) and, optionally, the signature anti-virus.
pub struct Tenants {
    /// `(display name, model)`, indexed by the wire `model` byte.
    pub models: Vec<(String, VectorClassifier)>,
    /// Feature dimension every `Classify` row must have.
    pub n_features: usize,
    /// The anti-virus tenant behind the `Scan` op.
    pub scanner: Option<SignatureScanner>,
}

struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Writes one reply frame; a vanished client is not an error worth
    /// propagating past its own connection.
    fn send(&self, id: u64, reply: &Reply) {
        let payload = protocol::encode_reply(id, reply);
        let mut w = self.writer.lock().unwrap();
        if protocol::write_frame(&mut *w, &payload).is_ok() {
            yali_obs::count!("serve.responses", 1);
        }
    }
}

/// One queued unit of batchable work. Immediate ops (ping, stats,
/// shutdown) never become jobs.
enum Job {
    Classify {
        conn: Arc<Conn>,
        id: u64,
        features: Vec<f64>,
        ctx: Option<TraceContext>,
    },
    Scan {
        conn: Arc<Conn>,
        id: u64,
        module: yali_ir::Module,
        ctx: Option<TraceContext>,
    },
}

impl Job {
    fn ctx(&self) -> Option<TraceContext> {
        match self {
            Job::Classify { ctx, .. } | Job::Scan { ctx, .. } => *ctx,
        }
    }
}

struct Shared {
    tenants: Tenants,
    batcher: Mutex<Batcher<Job>>,
    wake: Condvar,
    shutdown: AtomicBool,
    live: Live,
    addr: std::net::SocketAddr,
}

impl Shared {
    /// The legacy `STATS` text. The `serve.*` counters come straight from
    /// the `yali-obs` registry (the single source of truth since the
    /// ad-hoc `Stats` atomics were retired) and are therefore
    /// process-wide; a daemon process hosts one server, where the two
    /// views coincide.
    fn stats_text(&self) -> String {
        let roster: Vec<&str> = self.tenants.models.iter().map(|(n, _)| n.as_str()).collect();
        let c = |name: &'static str| yali_obs::counter(name).get();
        format!(
            "models {}\nn_features {}\nscanner {}\nserve.requests {}\nserve.responses {}\n\
             serve.overloaded {}\nserve.batches {}\nserve.batched_rows {}\nqueued {}\n",
            roster.join(","),
            self.tenants.n_features,
            self.tenants.scanner.is_some() as u8,
            c("serve.requests"),
            c("serve.responses"),
            c("serve.overloaded"),
            c("serve.batches"),
            c("serve.batch.rows"),
            self.batcher.lock().unwrap().len(),
        )
    }

    /// The `METRICS` reply: live windows + lifetime counters + recorder
    /// occupancy, one coherent snapshot.
    fn metrics(&self) -> protocol::Metrics {
        let now = yali_obs::epoch_ns();
        let g = self.live.global_stats(now);
        let rec = yali_obs::recorder::recorder_stats();
        let c = |name: &'static str| yali_obs::counter(name).get();
        let mut lanes = Vec::with_capacity(self.live.n_lanes());
        for (i, (name, _)) in self.tenants.models.iter().enumerate() {
            let s = self.live.lane_stats(i, now);
            lanes.push(protocol::LaneMetrics {
                lane: i as u32,
                name: name.clone(),
                window_count: s.count,
                p50_ns: s.p50_ns,
                p95_ns: s.p95_ns,
                p99_ns: s.p99_ns,
                qps: s.qps,
            });
        }
        let s = self.live.lane_stats(self.live.n_lanes() - 1, now);
        lanes.push(protocol::LaneMetrics {
            lane: SCAN_LANE,
            name: "scan".to_string(),
            window_count: s.count,
            p50_ns: s.p50_ns,
            p95_ns: s.p95_ns,
            p99_ns: s.p99_ns,
            qps: s.qps,
        });
        protocol::Metrics {
            window_ns: self.live.cfg.window.span_ns(),
            queue_depth: self.batcher.lock().unwrap().len() as u64,
            requests: c("serve.requests"),
            responses: c("serve.responses"),
            overloaded: c("serve.overloaded"),
            batches: c("serve.batches"),
            batched_rows: c("serve.batch.rows"),
            flight_dumps: c("serve.flight_dumps"),
            recorder_events: rec.events,
            recorder_dropped: rec.dropped,
            window_count: g.count,
            p50_ns: g.p50_ns,
            p95_ns: g.p95_ns,
            p99_ns: g.p99_ns,
            qps: g.qps,
            lanes,
        }
    }
}

/// The bound-but-not-yet-serving daemon. [`Server::bind`] then
/// [`Server::run`]; `run` returns after a graceful shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares the
    /// shared state with the default live-telemetry configuration.
    /// Nothing is served until [`Server::run`].
    pub fn bind(addr: &str, tenants: Tenants, cfg: BatcherConfig) -> io::Result<Server> {
        Server::bind_with(addr, tenants, cfg, LiveConfig::default())
    }

    /// [`Server::bind`] with an explicit [`LiveConfig`]. Binding turns
    /// observability on and arms the flight recorder at the configured
    /// capacity: a daemon is always instrumented — the `serve.*` registry
    /// counters are its only counters, and the recorder must already hold
    /// history when the first anomaly hits.
    pub fn bind_with(
        addr: &str,
        tenants: Tenants,
        cfg: BatcherConfig,
        live_cfg: LiveConfig,
    ) -> io::Result<Server> {
        yali_obs::set_enabled(true);
        yali_obs::recorder::set_recorder(Some(live_cfg.recorder_cap));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let n_models = tenants.models.len();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                tenants,
                batcher: Mutex::new(Batcher::new(cfg)),
                wake: Condvar::new(),
                shutdown: AtomicBool::new(false),
                live: Live::new(live_cfg, n_models),
                addr,
            }),
        })
    }

    /// The bound address (reads the ephemeral port back).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.shared.addr
    }

    /// Serves until a `SHUTDOWN` request: accepts connections, batches
    /// work, drains on shutdown, then returns.
    pub fn run(self) -> io::Result<()> {
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || dispatch_loop(&shared))
        };
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Verdicts are tiny frames; Nagle + delayed ACK would park
            // each one for tens of milliseconds.
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(&self.shared);
            // Readers are detached: each exits when its client hangs up,
            // and every *queued* job holds its own connection handle, so
            // the drain below can answer without the reader's help.
            std::thread::spawn(move || {
                let _ = connection_loop(&shared, stream);
            });
        }
        drop(self.listener); // stop accepting before the drain
        self.shared.wake.notify_all();
        dispatcher.join().expect("dispatcher panicked");
        Ok(())
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let conn = Arc::new(Conn {
        writer: Mutex::new(stream),
    });
    while let Some(payload) = protocol::read_frame(&mut reader)? {
        yali_obs::count!("serve.requests", 1);
        let (id, req, ctx) = match protocol::decode_request(&payload) {
            Ok(ok) => ok,
            Err(reason) => {
                // The id is the first 8 bytes when present; echo it so
                // the client can match the error to its request.
                let id = payload
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                conn.send(id, &Reply::BadRequest(reason));
                continue;
            }
        };
        match req {
            Request::Ping => conn.send(id, &Reply::Ok),
            Request::Stats => {
                let text = shared.stats_text();
                conn.send(id, &Reply::Stats(text));
            }
            Request::Metrics => conn.send(id, &Reply::Metrics(shared.metrics())),
            Request::DumpTrace => {
                let (dump, _) = yali_obs::recorder::dump();
                // A reply frame carries the whole dump plus a small
                // envelope; refuse rather than ship an unframeable blob.
                if dump.len() + 64 > protocol::MAX_FRAME {
                    conn.send(
                        id,
                        &Reply::BadRequest(format!(
                            "trace dump of {} bytes exceeds the frame limit",
                            dump.len()
                        )),
                    );
                } else {
                    conn.send(id, &Reply::Trace(dump));
                }
            }
            Request::Shutdown => {
                begin_shutdown(shared);
                conn.send(id, &Reply::Ok);
                // The connection has served its purpose; stop reading so
                // the ack is this connection's last word.
                break;
            }
            Request::Classify { model, features } => {
                let reply = match validate_classify(shared, model, &features) {
                    Some(reject) => Some(reject),
                    None => enqueue(
                        shared,
                        model as u32,
                        Job::Classify {
                            conn: Arc::clone(&conn),
                            id,
                            features,
                            ctx,
                        },
                    ),
                };
                if let Some(r) = reply {
                    conn.send(id, &r);
                }
            }
            Request::Scan { source } => {
                if shared.tenants.scanner.is_none() {
                    conn.send(id, &Reply::BadRequest("no scanner tenant".to_string()));
                    continue;
                }
                let reply = match yali_minic::compile(&source) {
                    Err(e) => Some(Reply::BadRequest(format!("minic: {e}"))),
                    Ok(module) => enqueue(
                        shared,
                        SCAN_LANE,
                        Job::Scan {
                            conn: Arc::clone(&conn),
                            id,
                            module,
                            ctx,
                        },
                    ),
                };
                if let Some(r) = reply {
                    conn.send(id, &r);
                }
            }
        }
    }
    Ok(())
}

fn validate_classify(shared: &Shared, model: u8, features: &[f64]) -> Option<Reply> {
    if model as usize >= shared.tenants.models.len() {
        return Some(Reply::UnknownModel);
    }
    if features.len() != shared.tenants.n_features {
        return Some(Reply::BadRequest(format!(
            "feature dimension {} (model expects {})",
            features.len(),
            shared.tenants.n_features
        )));
    }
    None
}

/// Admits a job, waking the dispatcher. `Some(reply)` means the job was
/// refused and the caller answers immediately.
fn enqueue(shared: &Shared, lane: u32, job: Job) -> Option<Reply> {
    if shared.shutdown.load(Ordering::Relaxed) {
        yali_obs::count!("serve.overloaded", 1);
        return Some(Reply::Overloaded);
    }
    let now = yali_obs::epoch_ns();
    let admitted = shared.batcher.lock().unwrap().offer(lane, job, now);
    if admitted {
        shared.wake.notify_all();
        None
    } else {
        yali_obs::count!("serve.overloaded", 1);
        // A full queue is the anomaly the flight recorder exists for:
        // snapshot the recent span history before it scrolls away.
        shared.live.maybe_dump("queue-overflow", now);
        Some(Reply::Overloaded)
    }
}

fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::Relaxed) {
        return; // already shutting down
    }
    shared.wake.notify_all();
    // The accept loop is blocked in `accept`; a loopback connection makes
    // it re-check the flag and break.
    let _ = TcpStream::connect(shared.addr);
}

fn dispatch_loop(shared: &Arc<Shared>) {
    let mut guard = shared.batcher.lock().unwrap();
    loop {
        let now = yali_obs::epoch_ns();
        if let Some(batch) = guard.pop_ready(now) {
            drop(guard);
            execute(shared, batch, now);
            guard = shared.batcher.lock().unwrap();
            continue;
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            // Drain: every queued row is answered before run() returns.
            loop {
                let Some(batch) = guard.pop_any() else { break };
                drop(guard);
                execute(shared, batch, yali_obs::epoch_ns());
                guard = shared.batcher.lock().unwrap();
            }
            return;
        }
        let wait = match guard.next_deadline_ns() {
            // +1 so a rounding-down nanosleep cannot spin short of the
            // deadline forever.
            Some(at) => Duration::from_nanos(at.saturating_sub(now) + 1),
            // Idle: offers and shutdown both notify, the timeout is only
            // a heartbeat.
            None => Duration::from_millis(100),
        };
        guard = shared.wake.wait_timeout(guard, wait).unwrap().0;
    }
}

fn execute(shared: &Shared, batch: Batch<Job>, dispatched_ns: u64) {
    // Adopt the first traced request's context for the dispatch span, so
    // at least one server-side span joins a client's timeline even before
    // the per-request `serve.job` attribution below.
    let _ctx_guard = batch
        .items
        .iter()
        .find_map(|p| p.item.ctx())
        .map(yali_obs::push_context);
    let _span = yali_obs::span!("serve.dispatch");
    let n = batch.items.len() as u64;
    yali_obs::count!("serve.batches", 1);
    yali_obs::count!("serve.batch.rows", n);
    match batch.trigger {
        Trigger::Full => yali_obs::count!("serve.batches.full", 1),
        Trigger::Deadline => yali_obs::count!("serve.batches.deadline", 1),
        Trigger::Drain => yali_obs::count!("serve.batches.drain", 1),
    }
    // The batch-size histogram abuses the ns-typed recorder for a row
    // count; its "p50_ns" in RUNSTATS is a row count, documented as such.
    yali_obs::record!("serve.batch_size", n);
    if let Some(oldest) = batch.items.first() {
        yali_obs::record!(
            "serve.batch_fill_ns",
            dispatched_ns.saturating_sub(oldest.enqueued_ns)
        );
    }
    for p in &batch.items {
        yali_obs::record!(
            "serve.queue_wait_ns",
            dispatched_ns.saturating_sub(p.enqueued_ns)
        );
    }
    // Enqueue stamps, saved before the match consumes the rows: after
    // the replies go out, each row's enqueue-to-reply latency feeds the
    // live windows.
    let enq: Vec<u64> = batch.items.iter().map(|p| p.enqueued_ns).collect();
    // Per-request hop attribution anchor points: a request's time in the
    // queue splits at the *newest* enqueue — before it the request was
    // waiting for the batch to fill, after it the whole batch was waiting
    // for the dispatcher. The split keeps the hops additive, so a traced
    // request's `serve.job` fields sum to its server-side residence.
    let newest_enq = enq.iter().copied().max().unwrap_or(dispatched_ns);
    let infer_start = yali_obs::epoch_ns();
    let replies: Vec<(Arc<Conn>, u64, Option<TraceContext>, Reply)> = if batch.lane == SCAN_LANE {
        let scanner = shared
            .tenants
            .scanner
            .as_ref()
            .expect("scan lane admitted without a scanner");
        let mut metas = Vec::with_capacity(batch.items.len());
        let mut modules = Vec::with_capacity(batch.items.len());
        for p in batch.items {
            match p.item {
                Job::Scan {
                    conn, id, module, ctx,
                } => {
                    metas.push((conn, id, ctx));
                    modules.push(module);
                }
                Job::Classify { .. } => unreachable!("classify job on the scan lane"),
            }
        }
        let verdicts = scanner.is_malware_all(&modules);
        let ratios = scanner.match_ratios(&modules);
        metas
            .into_iter()
            .zip(verdicts.into_iter().zip(ratios))
            .map(|((conn, id, ctx), (malware, ratio))| {
                (conn, id, ctx, Reply::Scan { malware, ratio })
            })
            .collect()
    } else {
        let (_, clf) = &shared.tenants.models[batch.lane as usize];
        let mut metas = Vec::with_capacity(batch.items.len());
        let mut rows = Vec::with_capacity(batch.items.len());
        for p in batch.items {
            match p.item {
                Job::Classify {
                    conn,
                    id,
                    features,
                    ctx,
                } => {
                    metas.push((conn, id, ctx));
                    rows.push(features);
                }
                Job::Scan { .. } => unreachable!("scan job on a classify lane"),
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let labels = clf.predict_batch_refs(&refs, yali_par::worker_count());
        metas
            .into_iter()
            .zip(labels)
            .map(|((conn, id, ctx), label)| (conn, id, ctx, Reply::Label(label as u32)))
            .collect()
    };
    let infer_end = yali_obs::epoch_ns();
    for (i, (conn, id, ctx, reply)) in replies.into_iter().enumerate() {
        conn.send(id, &reply);
        // One `serve.job` region per traced request, after its reply is
        // on the wire: the per-hop decomposition `yali-prof cross-path`
        // joins with the client's span by trace id.
        if let Some(ctx) = ctx {
            let _g = yali_obs::push_context(ctx);
            let enq_i = enq.get(i).copied().unwrap_or(dispatched_ns);
            yali_obs::trace_region(
                "serve.job",
                &[
                    ("req", id),
                    ("rows", n),
                    ("batch_fill_ns", newest_enq.saturating_sub(enq_i)),
                    ("queue_wait_ns", dispatched_ns.saturating_sub(newest_enq)),
                    ("infer_ns", infer_end.saturating_sub(infer_start)),
                    ("reply_ns", yali_obs::epoch_ns().saturating_sub(infer_end)),
                ],
            );
        }
    }
    // Feed the windows with reply-time latencies; a windowed-p99 breach
    // of the SLO triggers a flight dump (cooldown-limited, one winner).
    let done = yali_obs::epoch_ns();
    if shared.live.observe(batch.lane, &enq, done).is_some() {
        shared.live.maybe_dump("slo-p99", done);
    }
}
