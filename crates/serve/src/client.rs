//! A minimal blocking client: one connection, one outstanding request.
//!
//! The protocol allows pipelining (ids are echoed), but every consumer in
//! this repo — the CLI, the smoke test, the closed-loop bench workers —
//! wants exactly the one-outstanding-request shape, so that is all this
//! client implements. Each call sends one frame and blocks for the
//! matching reply.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;

use crate::protocol::{self, Reply, Request};
use yali_obs::TraceContext;

/// A connected verdict-API client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// When set, every request gets a [`TraceContext`] derived from this
    /// seed and the request id, a local `client.request` span, and the
    /// trace-context wire extension ([`protocol::OP_TRACED`]).
    trace_seed: Option<u64>,
}

impl Client {
    /// Connects to a running server (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            trace_seed: None,
        })
    }

    /// Enables distributed tracing on this connection: each subsequent
    /// request opens a `client.request` span carrying
    /// `TraceContext::derive(seed, request_id)` and ships that context to
    /// the server, whose `serve.dispatch`/`serve.job` events then share
    /// the trace id. Deterministic: the same seed and call sequence yield
    /// the same trace ids, so runs are diffable.
    pub fn set_tracing(&mut self, seed: u64) {
        self.trace_seed = Some(seed);
    }

    /// The trace context request `id` would carry (parent not yet
    /// stamped), when tracing is enabled. Lets callers correlate replies
    /// with trace ids without re-deriving the mixing function.
    pub fn trace_context_for(&self, id: u64) -> Option<TraceContext> {
        self.trace_seed.map(|seed| TraceContext::derive(seed, id))
    }

    fn call(&mut self, req: &Request) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        // The span must open *inside* the pushed context so its open event
        // carries the trace id; the wire context's parent is then the
        // span's own seq, making server-side hops children of this span.
        let root = self.trace_context_for(id);
        let _ctx_guard = root.map(yali_obs::push_context);
        let span = root.map(|_| yali_obs::span!("client.request"));
        let wire = root.map(|c| c.with_parent(span.as_ref().and_then(|s| s.seq()).unwrap_or(0)));
        protocol::write_frame(&mut self.writer, &protocol::encode_request_traced(id, req, wire))?;
        self.writer.flush()?;
        let payload = protocol::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let (got_id, reply) = protocol::decode_reply(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if got_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply id {got_id} does not match request id {id}"),
            ));
        }
        Ok(reply)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.call(&Request::Ping)
    }

    /// Classifies one feature vector with the model at roster index
    /// `model`. The returned [`Reply`] is `Label` on success, or one of
    /// the refusal statuses.
    pub fn classify(&mut self, model: u8, features: Vec<f64>) -> io::Result<Reply> {
        self.call(&Request::Classify { model, features })
    }

    /// Scans MiniC source with the anti-virus tenant.
    pub fn scan(&mut self, source: &str) -> io::Result<Reply> {
        self.call(&Request::Scan {
            source: source.to_string(),
        })
    }

    /// Server counters snapshot.
    pub fn stats(&mut self) -> io::Result<Reply> {
        self.call(&Request::Stats)
    }

    /// Structured live metrics: windowed quantiles + rolling QPS per
    /// lane, lifetime counters, recorder occupancy.
    pub fn metrics(&mut self) -> io::Result<Reply> {
        self.call(&Request::Metrics)
    }

    /// The server's flight-recorder contents as a `yali-prof`-parseable
    /// JSONL trace.
    pub fn dump_trace(&mut self) -> io::Result<Reply> {
        self.call(&Request::DumpTrace)
    }

    /// Requests a graceful shutdown; `Ok` acks that the drain began.
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.call(&Request::Shutdown)
    }
}
