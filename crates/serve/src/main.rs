//! The `yali-serve` CLI: run the verdict daemon, or talk to one.
//!
//! ```text
//! yali-serve serve [--addr 127.0.0.1:0] [--models lr,mlp,...]
//!                  [--classes N] [--per-class N] [--seed N]
//!     train the tenants (read-through YALI_STORE when attached), print
//!     "yali-serve: listening on HOST:PORT", serve until SHUTDOWN
//! yali-serve ping       --addr HOST:PORT
//! yali-serve classify   --addr HOST:PORT --model NAME (--features a,b,... | --code SRC)
//! yali-serve scan       --addr HOST:PORT --code SRC
//! yali-serve stats      --addr HOST:PORT
//! yali-serve metrics    --addr HOST:PORT
//! yali-serve dump-trace --addr HOST:PORT [--out FILE]
//! yali-serve top        --addr HOST:PORT [--interval-ms 1000] [--iterations N]
//! yali-serve shutdown   --addr HOST:PORT
//! ```
//!
//! `classify --code` compiles and embeds the MiniC source client-side
//! (the same `yali_embed::histogram` pipeline the server trained on) and
//! sends the resulting feature row; `--features` sends raw values.
//! `metrics` prints one structured live snapshot (windowed quantiles +
//! rolling QPS per lane), `dump-trace` pulls the flight recorder as a
//! `yali-prof`-ready JSONL trace, and `top` refreshes the metrics view
//! in place like its namesake.
//!
//! Every client subcommand accepts `--trace FILE [--trace-seed N]`: the
//! process writes its own `client`-role JSONL capture to FILE and stamps
//! each request with a trace context, so a server started with
//! `YALI_OBS=1 YALI_TRACE=...` produces a capture `yali-prof merge` can
//! stitch with FILE and `yali-prof cross-path` can attribute.

use std::process::ExitCode;

use yali_ml::ModelKind;
use yali_serve::{
    config_from_env, live_config_from_env, train_tenants, Client, Metrics, Reply, Server,
};

const USAGE: &str = "\
usage: yali-serve <serve|ping|classify|scan|stats|metrics|dump-trace|top|shutdown> [options]
  serve      [--addr 127.0.0.1:0] [--models lr,mlp,...] [--classes N] [--per-class N] [--seed N]
  ping       --addr HOST:PORT
  classify   --addr HOST:PORT --model NAME (--features a,b,... | --code SRC)
  scan       --addr HOST:PORT --code SRC
  stats      --addr HOST:PORT
  metrics    --addr HOST:PORT
  dump-trace --addr HOST:PORT [--out FILE]          (default: stdout)
  top        --addr HOST:PORT [--interval-ms 1000] [--iterations N]  (0 = forever)
  shutdown   --addr HOST:PORT
every client subcommand also takes --trace FILE [--trace-seed N]:
  write a client-side JSONL capture to FILE and send a trace context with
  each request (stitch with the server capture via `yali-prof merge`)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("ping") => cmd_simple(&args[1..], |c| c.ping()),
        Some("classify") => cmd_classify(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("stats") => cmd_simple(&args[1..], |c| c.stats()),
        Some("metrics") => cmd_simple(&args[1..], |c| c.metrics()),
        Some("dump-trace") => cmd_dump_trace(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("shutdown") => cmd_simple(&args[1..], |c| c.shutdown()),
        Some("help") | Some("--help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("yali-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One `--flag value` argument walker.
struct Args<'a> {
    flags: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn parse(args: &'a [String]) -> Result<Args<'a>, String> {
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {a:?}"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} {v:?} is not a count")),
        }
    }
}

fn model_by_name(name: &str) -> Result<ModelKind, String> {
    ModelKind::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name.trim())
        .ok_or_else(|| {
            let all: Vec<&str> = ModelKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown model {name:?} (known: {})", all.join(","))
        })
}

/// `--trace FILE [--trace-seed N]` on a client subcommand: attach a
/// client-role JSONL sink and stamp every request with a deterministic
/// trace context derived from the seed (default 1) and the request id.
fn maybe_enable_tracing(args: &Args, client: &mut Client) -> Result<(), String> {
    let Some(path) = args.get("trace") else {
        return Ok(());
    };
    let seed = args.get_u64("trace-seed", 1)?;
    yali_obs::set_identity("client", None);
    yali_obs::set_enabled(true);
    yali_obs::set_trace_path(Some(path));
    client.set_tracing(seed);
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let args = Args::parse(args)?;
    // Stamp the capture's process lane before anything can attach the
    // trace sink (the preamble renders when the sink attaches).
    yali_obs::set_identity("serve", None);
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let kinds: Vec<ModelKind> = match args.get("models") {
        None => vec![ModelKind::Lr, ModelKind::Mlp],
        Some(list) => list
            .split(',')
            .map(model_by_name)
            .collect::<Result<_, _>>()?,
    };
    let classes = args.get_u64("classes", 8)? as usize;
    let per_class = args.get_u64("per-class", 12)? as usize;
    let seed = args.get_u64("seed", 77)?;
    let tenants = train_tenants(&kinds, classes, per_class, seed);
    let server = Server::bind_with(addr, tenants, config_from_env(), live_config_from_env())
        .map_err(|e| format!("bind {addr}: {e}"))?;
    // The smoke test and any scripted caller parse this exact line to
    // discover the ephemeral port; keep it first and flushed.
    println!("yali-serve: listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve: {e}"))
}

fn print_reply(reply: &Reply) -> Result<(), String> {
    match reply {
        Reply::Ok => println!("ok"),
        Reply::Label(l) => println!("label {l}"),
        Reply::Scan { malware, ratio } => {
            println!("malware {malware} ratio {ratio:.4}")
        }
        Reply::Stats(text) => print!("{text}"),
        Reply::Metrics(m) => print!("{}", render_metrics(m)),
        Reply::Trace(jsonl) => print!("{jsonl}"),
        Reply::Overloaded => return Err("server overloaded".to_string()),
        Reply::BadRequest(reason) => return Err(format!("bad request: {reason}")),
        Reply::UnknownModel => return Err("unknown model index".to_string()),
    }
    Ok(())
}

fn cmd_simple(
    args: &[String],
    call: impl FnOnce(&mut Client) -> std::io::Result<Reply>,
) -> Result<(), String> {
    let args = Args::parse(args)?;
    let addr = args.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    maybe_enable_tracing(&args, &mut client)?;
    let reply = call(&mut client).map_err(|e| e.to_string())?;
    print_reply(&reply)
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let args = Args::parse(args)?;
    let addr = args.require("addr")?;
    let model_name = args.require("model")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    maybe_enable_tracing(&args, &mut client)?;
    // Resolve the model name against the server's roster so the wire
    // index always matches what the daemon actually serves.
    let stats = match client.stats().map_err(|e| e.to_string())? {
        Reply::Stats(text) => text,
        other => return Err(format!("unexpected stats reply {other:?}")),
    };
    let roster: Vec<String> = stats
        .lines()
        .find_map(|l| l.strip_prefix("models "))
        .map(|m| m.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let model = roster
        .iter()
        .position(|n| n == model_name.trim())
        .ok_or_else(|| format!("server does not serve {model_name:?} (roster: {roster:?})"))?
        as u8;
    let features: Vec<f64> = match (args.get("features"), args.get("code")) {
        (Some(csv), None) => csv
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("feature {v:?} is not a number"))
            })
            .collect::<Result<_, _>>()?,
        (None, Some(src)) => {
            let module = yali_minic::compile(src).map_err(|e| format!("minic: {e}"))?;
            yali_embed::histogram(&module)
        }
        _ => return Err("classify needs exactly one of --features or --code".to_string()),
    };
    let reply = client.classify(model, features).map_err(|e| e.to_string())?;
    print_reply(&reply)
}

/// `None` quantiles (empty window) render as `-`, never a fake zero.
fn fmt_q(q: Option<u64>) -> String {
    match q {
        Some(ns) => format!("{:.3}", ns as f64 / 1e6),
        None => "-".to_string(),
    }
}

fn render_metrics(m: &Metrics) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "window {:.1}s  queue {}  requests {}  responses {}  overloaded {}",
        m.window_ns as f64 / 1e9,
        m.queue_depth,
        m.requests,
        m.responses,
        m.overloaded
    );
    let _ = writeln!(
        out,
        "batches {}  rows {}  flight_dumps {}  recorder {} events ({} dropped)",
        m.batches, m.batched_rows, m.flight_dumps, m.recorder_events, m.recorder_dropped
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "lane", "count", "p50 ms", "p95 ms", "p99 ms", "qps"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10.1}",
        "all",
        m.window_count,
        fmt_q(m.p50_ns),
        fmt_q(m.p95_ns),
        fmt_q(m.p99_ns),
        m.qps
    );
    for lane in &m.lanes {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10.1}",
            lane.name,
            lane.window_count,
            fmt_q(lane.p50_ns),
            fmt_q(lane.p95_ns),
            fmt_q(lane.p99_ns),
            lane.qps
        );
    }
    out
}

fn cmd_dump_trace(args: &[String]) -> Result<(), String> {
    let args = Args::parse(args)?;
    let addr = args.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let jsonl = match client.dump_trace().map_err(|e| e.to_string())? {
        Reply::Trace(jsonl) => jsonl,
        other => return Err(format!("unexpected dump-trace reply {other:?}")),
    };
    match args.get("out") {
        None => print!("{jsonl}"),
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "yali-serve: wrote {} lines to {path}",
                jsonl.lines().count()
            );
        }
    }
    Ok(())
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    use std::io::{IsTerminal, Write};
    let args = Args::parse(args)?;
    let addr = args.require("addr")?;
    let interval = args.get_u64("interval-ms", 1_000)?;
    let iterations = args.get_u64("iterations", 0)?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let fancy = std::io::stdout().is_terminal();
    let mut n = 0u64;
    loop {
        let m = match client.metrics().map_err(|e| e.to_string())? {
            Reply::Metrics(m) => m,
            other => return Err(format!("unexpected metrics reply {other:?}")),
        };
        let mut stdout = std::io::stdout().lock();
        if fancy {
            // Home + clear-to-end keeps a static layout from flickering.
            let _ = write!(stdout, "\x1b[H\x1b[2J");
        }
        let _ = write!(stdout, "yali-serve top — {addr}\n{}", render_metrics(&m));
        let _ = stdout.flush();
        n += 1;
        if iterations != 0 && n >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let args = Args::parse(args)?;
    let addr = args.require("addr")?;
    let code = args.require("code")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    maybe_enable_tracing(&args, &mut client)?;
    let reply = client.scan(code).map_err(|e| e.to_string())?;
    print_reply(&reply)
}
