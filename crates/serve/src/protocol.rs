//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! u32 LE payload length | payload
//! ```
//!
//! A request payload is `u64 LE request id | u8 opcode | body`; the id is
//! chosen by the client and echoed verbatim on the response, so a client
//! may pipeline requests on one connection and match replies by id. A
//! response payload is `u64 LE request id | u8 status | body`. All
//! integers are little-endian; feature values are `f64::to_le_bytes`
//! (bit-exact — the server classifies the very bits the client sent,
//! which is what makes the served-verdict-equals-direct-predict invariant
//! testable at all).
//!
//! The frame length is capped at [`MAX_FRAME`]; a peer announcing a
//! larger frame is protocol-broken and the connection is dropped rather
//! than the length trusted.
//!
//! ## Trace-context extension
//!
//! A request may carry a distributed [`TraceContext`] by setting the
//! [`OP_TRACED`] bit on its opcode byte; 16 extension bytes
//! (`u64 LE trace id | u64 LE parent span`) then follow the opcode before
//! the body. Servers echo the context onto their dispatch telemetry so
//! client-side and server-side spans share one trace id, and a server
//! that predates the extension rejects the unknown opcode instead of
//! misparsing the frame — the bit doubles as a version gate.

use std::io::{self, Read, Write};

use yali_obs::TraceContext;

/// Hard cap on one frame's payload (16 MiB) — large enough for any real
/// feature vector or source blob, small enough that a corrupt length
/// field cannot drive an allocation bomb.
pub const MAX_FRAME: usize = 16 << 20;

/// One request, already decoded from a frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered immediately, never batched.
    Ping,
    /// Classify one feature vector with the model at `model` (an index
    /// into the serve-time model list; see `STATS` for the roster).
    Classify {
        /// Index into the server's model roster.
        model: u8,
        /// The query row, bit-exact.
        features: Vec<f64>,
    },
    /// Compile MiniC source server-side and scan it with the signature
    /// anti-virus ([`yali_core::SignatureScanner`]).
    Scan {
        /// MiniC translation unit text.
        source: String,
    },
    /// Server counters snapshot (answered immediately, never batched).
    Stats,
    /// Graceful shutdown: stop accepting, drain every queued request,
    /// answer them all, ack, exit.
    Shutdown,
    /// Live telemetry snapshot: windowed quantiles, rolling QPS, queue
    /// depth, recorder occupancy (answered immediately, never batched).
    Metrics,
    /// Drain the flight recorder into a JSONL trace and ship it back
    /// (answered immediately, never batched).
    DumpTrace,
}

/// Per-lane live telemetry in a [`Reply::Metrics`] body: one entry per
/// model lane plus the scan lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneMetrics {
    /// Model index, or [`crate::SCAN_LANE`] for the scan lane.
    pub lane: u32,
    /// Human name (model kind, or `"scan"`).
    pub name: String,
    /// Requests inside the sliding window.
    pub window_count: u64,
    /// Windowed latency quantiles in nanoseconds; `None` when the window
    /// is empty (an idle lane has *no* p99, not a zero one).
    pub p50_ns: Option<u64>,
    /// See `p50_ns`.
    pub p95_ns: Option<u64>,
    /// See `p50_ns`.
    pub p99_ns: Option<u64>,
    /// Rolling requests/second over the window.
    pub qps: f64,
}

/// The [`Reply::Metrics`] body: the live-telemetry answer to "what is
/// this server doing *right now*" — windowed latency quantiles and
/// rolling QPS (global and per lane), queue depth, flight-recorder
/// occupancy, and the lifetime counters the old `stats` text carried.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Sliding-window span in nanoseconds.
    pub window_ns: u64,
    /// Rows waiting in the admission queue right now.
    pub queue_depth: u64,
    /// Lifetime requests accepted.
    pub requests: u64,
    /// Lifetime responses sent.
    pub responses: u64,
    /// Lifetime requests refused with `Overloaded`.
    pub overloaded: u64,
    /// Lifetime batches dispatched.
    pub batches: u64,
    /// Lifetime rows dispatched through batches.
    pub batched_rows: u64,
    /// Anomaly-triggered flight-recorder dumps written so far.
    pub flight_dumps: u64,
    /// Span events pushed into the flight recorder over its lifetime.
    pub recorder_events: u64,
    /// Of those, events already overwritten (the rings are bounded).
    pub recorder_dropped: u64,
    /// Requests inside the sliding window (all lanes).
    pub window_count: u64,
    /// Windowed global latency quantiles; `None` when the window is
    /// empty.
    pub p50_ns: Option<u64>,
    /// See `p50_ns`.
    pub p95_ns: Option<u64>,
    /// See `p50_ns`.
    pub p99_ns: Option<u64>,
    /// Rolling global requests/second over the window.
    pub qps: f64,
    /// Per-lane breakdowns (model lanes first, scan lane last).
    pub lanes: Vec<LaneMetrics>,
}

/// One response body, already decoded from a frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `Ping`, `Shutdown` ack.
    Ok,
    /// `Classify` verdict: the predicted class label.
    Label(u32),
    /// `Scan` verdict: the anti-virus call and its signature match ratio.
    Scan {
        /// `true` when the scanner calls the module malware.
        malware: bool,
        /// Fraction of malware signatures the module matched.
        ratio: f64,
    },
    /// `Stats` snapshot (human-readable `key value` lines).
    Stats(String),
    /// The admission queue is full (or the server is draining); the
    /// request was NOT enqueued. Back off and retry.
    Overloaded,
    /// The request could not be honored as sent (malformed body, wrong
    /// feature dimension, MiniC that does not compile). The string names
    /// the reason.
    BadRequest(String),
    /// The `Classify` model index is outside the server's roster.
    UnknownModel,
    /// `Metrics` snapshot.
    Metrics(Metrics),
    /// `DumpTrace` result: a flight-recorder dump as JSONL text, directly
    /// consumable by `yali-prof`.
    Trace(String),
}

/// Opcode flag bit: the request carries a 16-byte trace-context extension
/// (`u64 trace id | u64 parent span`) between the opcode and the body.
pub const OP_TRACED: u8 = 0x80;

const OP_PING: u8 = 1;
const OP_CLASSIFY: u8 = 2;
const OP_SCAN: u8 = 3;
const OP_STATS: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_METRICS: u8 = 6;
const OP_DUMP_TRACE: u8 = 7;

const ST_OK: u8 = 0;
const ST_LABEL: u8 = 1;
const ST_SCAN: u8 = 2;
const ST_STATS: u8 = 3;
const ST_OVERLOADED: u8 = 4;
const ST_BAD_REQUEST: u8 = 5;
const ST_UNKNOWN_MODEL: u8 = 6;
const ST_METRICS: u8 = 7;
const ST_TRACE: u8 = 8;

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` is a clean EOF on the frame
/// boundary (the peer hung up between messages); an EOF mid-frame, or a
/// length over [`MAX_FRAME`], is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a request frame payload (id + opcode + body) with no trace
/// context.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    encode_request_traced(id, req, None)
}

/// Encodes a request frame payload, optionally stamping the trace-context
/// extension ([`OP_TRACED`] bit + 16 context bytes after the opcode).
pub fn encode_request_traced(id: u64, req: &Request, ctx: Option<TraceContext>) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&id.to_le_bytes());
    let op_at = out.len();
    match req {
        Request::Ping => out.push(OP_PING),
        Request::Classify { model, features } => {
            out.push(OP_CLASSIFY);
            out.push(*model);
            out.extend_from_slice(&(features.len() as u32).to_le_bytes());
            for v in features {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Request::Scan { source } => {
            out.push(OP_SCAN);
            out.extend_from_slice(&(source.len() as u32).to_le_bytes());
            out.extend_from_slice(source.as_bytes());
        }
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::Metrics => out.push(OP_METRICS),
        Request::DumpTrace => out.push(OP_DUMP_TRACE),
    }
    if let Some(ctx) = ctx {
        out[op_at] |= OP_TRACED;
        let mut ext = [0u8; 16];
        ext[..8].copy_from_slice(&ctx.trace_id.to_le_bytes());
        ext[8..].copy_from_slice(&ctx.parent_span.to_le_bytes());
        out.splice(op_at + 1..op_at + 1, ext);
    }
    out
}

/// Encodes one window block (count + optional quantiles + rate). The
/// presence flag keeps "idle window" distinguishable from "0 ns" on the
/// wire: all three quantiles are `Some` or all are `None`, matching how
/// a histogram snapshot answers.
fn encode_window_block(
    out: &mut Vec<u8>,
    count: u64,
    p50: Option<u64>,
    p95: Option<u64>,
    p99: Option<u64>,
    qps: f64,
) {
    out.extend_from_slice(&count.to_le_bytes());
    match (p50, p95, p99) {
        (Some(a), Some(b), Some(c)) => {
            out.push(1);
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        _ => out.push(0),
    }
    out.extend_from_slice(&qps.to_le_bytes());
}

#[allow(clippy::type_complexity)]
fn decode_window_block(
    c: &mut Cursor,
) -> Result<(u64, Option<u64>, Option<u64>, Option<u64>, f64), String> {
    let count = c.u64()?;
    let (p50, p95, p99) = match c.u8()? {
        0 => (None, None, None),
        1 => (Some(c.u64()?), Some(c.u64()?), Some(c.u64()?)),
        other => return Err(format!("bad quantile presence flag {other}")),
    };
    let qps = f64::from_le_bytes(c.bytes8()?);
    Ok((count, p50, p95, p99, qps))
}

/// Decodes a request frame payload into `(id, request, trace context)`;
/// `Err` carries the reason the payload is malformed.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request, Option<TraceContext>), String> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let op_raw = c.u8()?;
    let ctx = if op_raw & OP_TRACED != 0 {
        Some(TraceContext {
            trace_id: c.u64()?,
            parent_span: c.u64()?,
        })
    } else {
        None
    };
    let req = match op_raw & !OP_TRACED {
        OP_PING => Request::Ping,
        OP_CLASSIFY => {
            let model = c.u8()?;
            let n = c.u32()? as usize;
            if n > MAX_FRAME / 8 {
                return Err(format!("feature count {n} is implausible"));
            }
            let mut features = Vec::with_capacity(n);
            for _ in 0..n {
                features.push(f64::from_le_bytes(c.bytes8()?));
            }
            Request::Classify { model, features }
        }
        OP_SCAN => {
            let n = c.u32()? as usize;
            let raw = c.take(n)?;
            let source = String::from_utf8(raw.to_vec())
                .map_err(|_| "scan source is not UTF-8".to_string())?;
            Request::Scan { source }
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_METRICS => Request::Metrics,
        OP_DUMP_TRACE => Request::DumpTrace,
        other => return Err(format!("unknown opcode {other}")),
    };
    c.done()?;
    Ok((id, req, ctx))
}

/// Encodes a response frame payload (id + status + body).
pub fn encode_reply(id: u64, reply: &Reply) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&id.to_le_bytes());
    match reply {
        Reply::Ok => out.push(ST_OK),
        Reply::Label(l) => {
            out.push(ST_LABEL);
            out.extend_from_slice(&l.to_le_bytes());
        }
        Reply::Scan { malware, ratio } => {
            out.push(ST_SCAN);
            out.push(*malware as u8);
            out.extend_from_slice(&ratio.to_le_bytes());
        }
        Reply::Stats(text) => {
            out.push(ST_STATS);
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        Reply::Overloaded => out.push(ST_OVERLOADED),
        Reply::BadRequest(reason) => {
            out.push(ST_BAD_REQUEST);
            out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
            out.extend_from_slice(reason.as_bytes());
        }
        Reply::UnknownModel => out.push(ST_UNKNOWN_MODEL),
        Reply::Metrics(m) => {
            out.push(ST_METRICS);
            out.extend_from_slice(&m.window_ns.to_le_bytes());
            out.extend_from_slice(&m.queue_depth.to_le_bytes());
            out.extend_from_slice(&m.requests.to_le_bytes());
            out.extend_from_slice(&m.responses.to_le_bytes());
            out.extend_from_slice(&m.overloaded.to_le_bytes());
            out.extend_from_slice(&m.batches.to_le_bytes());
            out.extend_from_slice(&m.batched_rows.to_le_bytes());
            out.extend_from_slice(&m.flight_dumps.to_le_bytes());
            out.extend_from_slice(&m.recorder_events.to_le_bytes());
            out.extend_from_slice(&m.recorder_dropped.to_le_bytes());
            encode_window_block(&mut out, m.window_count, m.p50_ns, m.p95_ns, m.p99_ns, m.qps);
            out.extend_from_slice(&(m.lanes.len() as u32).to_le_bytes());
            for lane in &m.lanes {
                out.extend_from_slice(&lane.lane.to_le_bytes());
                out.extend_from_slice(&(lane.name.len() as u32).to_le_bytes());
                out.extend_from_slice(lane.name.as_bytes());
                encode_window_block(
                    &mut out,
                    lane.window_count,
                    lane.p50_ns,
                    lane.p95_ns,
                    lane.p99_ns,
                    lane.qps,
                );
            }
        }
        Reply::Trace(text) => {
            out.push(ST_TRACE);
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
    }
    out
}

/// Decodes a response frame payload into `(id, reply)`.
pub fn decode_reply(payload: &[u8]) -> Result<(u64, Reply), String> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let st = c.u8()?;
    let reply = match st {
        ST_OK => Reply::Ok,
        ST_LABEL => Reply::Label(c.u32()?),
        ST_SCAN => {
            let malware = c.u8()? != 0;
            let ratio = f64::from_le_bytes(c.bytes8()?);
            Reply::Scan { malware, ratio }
        }
        ST_STATS => {
            let n = c.u32()? as usize;
            let raw = c.take(n)?;
            Reply::Stats(
                String::from_utf8(raw.to_vec()).map_err(|_| "stats not UTF-8".to_string())?,
            )
        }
        ST_OVERLOADED => Reply::Overloaded,
        ST_BAD_REQUEST => {
            let n = c.u32()? as usize;
            let raw = c.take(n)?;
            Reply::BadRequest(
                String::from_utf8(raw.to_vec()).map_err(|_| "reason not UTF-8".to_string())?,
            )
        }
        ST_UNKNOWN_MODEL => Reply::UnknownModel,
        ST_METRICS => {
            let window_ns = c.u64()?;
            let queue_depth = c.u64()?;
            let requests = c.u64()?;
            let responses = c.u64()?;
            let overloaded = c.u64()?;
            let batches = c.u64()?;
            let batched_rows = c.u64()?;
            let flight_dumps = c.u64()?;
            let recorder_events = c.u64()?;
            let recorder_dropped = c.u64()?;
            let (window_count, p50_ns, p95_ns, p99_ns, qps) = decode_window_block(&mut c)?;
            let n_lanes = c.u32()? as usize;
            if n_lanes > 4096 {
                return Err(format!("lane count {n_lanes} is implausible"));
            }
            let mut lanes = Vec::with_capacity(n_lanes);
            for _ in 0..n_lanes {
                let lane = c.u32()?;
                let n = c.u32()? as usize;
                let name = String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| "lane name is not UTF-8".to_string())?;
                let (window_count, p50_ns, p95_ns, p99_ns, qps) = decode_window_block(&mut c)?;
                lanes.push(LaneMetrics {
                    lane,
                    name,
                    window_count,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    qps,
                });
            }
            Reply::Metrics(Metrics {
                window_ns,
                queue_depth,
                requests,
                responses,
                overloaded,
                batches,
                batched_rows,
                flight_dumps,
                recorder_events,
                recorder_dropped,
                window_count,
                p50_ns,
                p95_ns,
                p99_ns,
                qps,
                lanes,
            })
        }
        ST_TRACE => {
            let n = c.u32()? as usize;
            Reply::Trace(
                String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| "trace not UTF-8".to_string())?,
            )
        }
        other => return Err(format!("unknown status {other}")),
    };
    c.done()?;
    Ok((id, reply))
}

/// A bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn bytes8(&mut self) -> Result<[u8; 8], String> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(b)
    }

    /// Rejects trailing bytes — a frame must be exactly one message.
    fn done(&self) -> Result<(), String> {
        if self.pos != self.data.len() {
            return Err(format!(
                "{} trailing bytes after the message",
                self.data.len() - self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Ping,
            Request::Classify {
                model: 3,
                features: vec![0.5, -0.0, f64::MIN_POSITIVE, 1e300],
            },
            Request::Scan {
                source: "int f() { return 1; }".to_string(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::DumpTrace,
        ];
        for (i, req) in cases.iter().enumerate() {
            let payload = encode_request(i as u64 + 7, req);
            let (id, back, ctx) = decode_request(&payload).unwrap();
            assert_eq!(id, i as u64 + 7);
            assert_eq!(&back, req);
            assert_eq!(ctx, None, "plain encoding carries no context");
            // The same request with a trace context round-trips the
            // context bit-exactly and decodes to the same request.
            let want = TraceContext {
                trace_id: 0xdead_beef_cafe_f00d,
                parent_span: u64::MAX - i as u64,
            };
            let traced = encode_request_traced(i as u64 + 7, req, Some(want));
            let (id, back, ctx) = decode_request(&traced).unwrap();
            assert_eq!(id, i as u64 + 7);
            assert_eq!(&back, req);
            assert_eq!(ctx, Some(want));
            assert_eq!(traced.len(), payload.len() + 16);
        }
    }

    #[test]
    fn traced_opcode_without_the_extension_bytes_is_rejected() {
        // Flip the trace bit on a plain ping: the decoder now expects 16
        // extension bytes that are not there.
        let mut payload = encode_request(1, &Request::Ping);
        payload[8] |= OP_TRACED;
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn replies_round_trip() {
        let cases = [
            Reply::Ok,
            Reply::Label(42),
            Reply::Scan {
                malware: true,
                ratio: 0.375,
            },
            Reply::Stats("serve.requests 9\n".to_string()),
            Reply::Overloaded,
            Reply::BadRequest("dim mismatch".to_string()),
            Reply::UnknownModel,
            Reply::Trace("{\"ev\":\"recorder\",\"tid\":1,\"t_ns\":0}\n".to_string()),
            // A busy server: quantiles present globally and on one lane,
            // absent (idle window) on the other.
            Reply::Metrics(Metrics {
                window_ns: 10_000_000_000,
                queue_depth: 3,
                requests: 100,
                responses: 99,
                overloaded: 1,
                batches: 12,
                batched_rows: 96,
                flight_dumps: 2,
                recorder_events: 4096,
                recorder_dropped: 777,
                window_count: 50,
                p50_ns: Some(1_200_000),
                p95_ns: Some(2_500_000),
                p99_ns: Some(4_000_000),
                qps: 123.456,
                lanes: vec![
                    LaneMetrics {
                        lane: 0,
                        name: "mlp".to_string(),
                        window_count: 50,
                        p50_ns: Some(1_200_000),
                        p95_ns: Some(2_500_000),
                        p99_ns: Some(4_000_000),
                        qps: 123.456,
                    },
                    LaneMetrics {
                        lane: u32::MAX,
                        name: "scan".to_string(),
                        window_count: 0,
                        p50_ns: None,
                        p95_ns: None,
                        p99_ns: None,
                        qps: 0.0,
                    },
                ],
            }),
            // A freshly started server: nothing anywhere.
            Reply::Metrics(Metrics {
                window_ns: 10_000_000_000,
                queue_depth: 0,
                requests: 0,
                responses: 0,
                overloaded: 0,
                batches: 0,
                batched_rows: 0,
                flight_dumps: 0,
                recorder_events: 0,
                recorder_dropped: 0,
                window_count: 0,
                p50_ns: None,
                p95_ns: None,
                p99_ns: None,
                qps: 0.0,
                lanes: vec![],
            }),
        ];
        for (i, reply) in cases.iter().enumerate() {
            let payload = encode_reply(i as u64, reply);
            let (id, back) = decode_reply(&payload).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&back, reply);
        }
    }

    #[test]
    fn metrics_quantile_flag_rejects_garbage() {
        // Body of a Metrics reply where the presence flag is neither 0
        // nor 1: ten u64 counters, a count, then the bad flag.
        let mut payload = 1u64.to_le_bytes().to_vec();
        payload.push(ST_METRICS);
        for _ in 0..11 {
            payload.extend_from_slice(&0u64.to_le_bytes());
        }
        payload.push(7);
        let err = decode_reply(&payload).unwrap_err();
        assert!(err.contains("presence flag"), "{err}");
    }

    #[test]
    fn classify_features_are_bit_exact() {
        // Signed zero and signaling-adjacent bit patterns must survive
        // the wire exactly: the serve invariant is bit-identity with a
        // direct predict call on the same bits.
        let features = vec![-0.0, f64::NAN, 1.0 + f64::EPSILON];
        let payload = encode_request(1, &Request::Classify { model: 0, features: features.clone() });
        let (_, back, _) = decode_request(&payload).unwrap();
        let Request::Classify { features: got, .. } = back else {
            panic!("wrong variant");
        };
        let want: Vec<u64> = features.iter().map(|v| v.to_bits()).collect();
        let have: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, have);
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let payload = encode_request(5, &Request::Classify { model: 0, features: vec![1.0] });
        assert!(decode_request(&payload[..payload.len() - 1]).is_err());
        let mut extra = payload.clone();
        extra.push(0);
        assert!(decode_request(&extra).is_err());
        // An EOF mid-frame (length says 10, body has 3) is an error, not
        // a clean close.
        let mut torn = 10u32.to_le_bytes().to_vec();
        torn.extend_from_slice(b"abc");
        assert!(read_frame(&mut &torn[..]).is_err());
    }
}
