//! Live telemetry for the daemon: per-lane sliding windows, the anomaly
//! trigger, and flight-recorder dump plumbing.
//!
//! Each lane (one per model, plus the scan lane) owns a
//! [`WindowedHistogram`] of enqueue-to-reply latencies and a
//! [`WindowedCounter`] of completions; a global pair aggregates across
//! lanes. The dispatcher feeds them after every batch it answers, and the
//! `metrics` protocol op snapshots them — so "p99 right now" is a real
//! sliding-window quantile, not a lifetime aggregate that stopped meaning
//! anything minutes after boot.
//!
//! The anomaly trigger turns the flight recorder from a passive ring into
//! an incident artifact: when the *windowed* global p99 breaches the
//! configured SLO, or the admission queue refuses a request, the recorder
//! is dumped to a JSONL file in [`LiveConfig::dump_dir`] (rate-limited by
//! [`LiveConfig::dump_cooldown_ns`], so a sustained breach produces one
//! dump per cooldown, not one per batch). The decision is a pure function
//! ([`should_dump`]) of explicit nanosecond inputs, tested without clocks
//! or filesystems.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use yali_obs::window::{WindowConfig, WindowedCounter, WindowedHistogram};

use crate::server::SCAN_LANE;

/// Configuration for the live-telemetry layer, fixed at bind time.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Sliding-window shape for latency quantiles and rolling QPS.
    pub window: WindowConfig,
    /// Windowed-p99 SLO in nanoseconds; a breach triggers a flight
    /// recorder dump. `None` disables the latency trigger.
    pub slo_p99_ns: Option<u64>,
    /// Directory anomaly dumps are written into.
    pub dump_dir: PathBuf,
    /// Minimum nanoseconds between anomaly dumps (a sustained breach
    /// must not flood the disk).
    pub dump_cooldown_ns: u64,
    /// Flight recorder ring capacity per thread, in events; 0 leaves the
    /// recorder disarmed.
    pub recorder_cap: usize,
}

impl Default for LiveConfig {
    /// 10x1s windows, no SLO trigger, dumps to the working directory at
    /// most every 5 s, recorder armed at the default capacity.
    fn default() -> LiveConfig {
        LiveConfig {
            window: WindowConfig::default(),
            slo_p99_ns: None,
            dump_dir: PathBuf::from("."),
            dump_cooldown_ns: 5_000_000_000,
            recorder_cap: yali_obs::recorder::DEFAULT_RECORDER_CAP,
        }
    }
}

/// [`LiveConfig`] from the environment: `YALI_SERVE_SLO_P99_MS` (windowed
/// p99 SLO in milliseconds; unset disables the latency trigger) and
/// `YALI_SERVE_DUMP_DIR` (anomaly dump directory, default `.`). Garbage
/// SLO values warn once and disable the trigger, per the knob discipline.
pub fn live_config_from_env() -> LiveConfig {
    static ONCE: yali_obs::WarnOnce = yali_obs::WarnOnce::new();
    let slo_p99_ns = yali_obs::env_once(
        "YALI_SERVE_SLO_P99_MS",
        &ONCE,
        "is not a positive millisecond count; the SLO dump trigger stays off",
        crate::parse_positive,
    )
    .map(|ms| ms.saturating_mul(1_000_000));
    let dump_dir = std::env::var("YALI_SERVE_DUMP_DIR")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    LiveConfig {
        slo_p99_ns,
        dump_dir,
        ..LiveConfig::default()
    }
}

/// Pure anomaly-trigger decision: dump iff there is something anomalous
/// (`breached`) and the last dump is at least `cooldown_ns` old
/// (`last_dump_ns == 0` means "never dumped", which always qualifies).
pub fn should_dump(breached: bool, last_dump_ns: u64, now_ns: u64, cooldown_ns: u64) -> bool {
    breached && (last_dump_ns == 0 || now_ns.saturating_sub(last_dump_ns) >= cooldown_ns)
}

/// One lane's sliding-window state.
struct LaneWindow {
    hist: WindowedHistogram,
    thru: WindowedCounter,
}

impl LaneWindow {
    fn new(cfg: WindowConfig) -> LaneWindow {
        LaneWindow {
            hist: WindowedHistogram::new(cfg),
            thru: WindowedCounter::new(cfg),
        }
    }
}

/// A point-in-time window snapshot for one lane (or the global
/// aggregate): count, optional quantiles, rolling rate.
pub(crate) struct WindowStats {
    pub count: u64,
    pub p50_ns: Option<u64>,
    pub p95_ns: Option<u64>,
    pub p99_ns: Option<u64>,
    pub qps: f64,
}

/// The live-telemetry state one server instance owns.
pub(crate) struct Live {
    pub(crate) cfg: LiveConfig,
    /// Model lanes in roster order, then the scan lane.
    lanes: Vec<Mutex<LaneWindow>>,
    global: Mutex<LaneWindow>,
    /// `epoch_ns` of the last anomaly dump (0 = never).
    last_dump_ns: AtomicU64,
}

impl Live {
    pub(crate) fn new(cfg: LiveConfig, n_models: usize) -> Live {
        let lanes = (0..n_models + 1)
            .map(|_| Mutex::new(LaneWindow::new(cfg.window)))
            .collect();
        Live {
            global: Mutex::new(LaneWindow::new(cfg.window)),
            lanes,
            last_dump_ns: AtomicU64::new(0),
            cfg,
        }
    }

    fn lane_idx(&self, lane: u32) -> usize {
        if lane == SCAN_LANE {
            self.lanes.len() - 1
        } else {
            (lane as usize).min(self.lanes.len() - 1)
        }
    }

    /// Records one answered batch: `enqueued_ns` are the rows' admission
    /// timestamps, `now_ns` the post-reply clock; each row contributes
    /// its enqueue-to-reply latency. Returns the windowed global p99
    /// *iff* it breaches the configured SLO.
    pub(crate) fn observe(&self, lane: u32, enqueued_ns: &[u64], now_ns: u64) -> Option<u64> {
        if enqueued_ns.is_empty() {
            return None;
        }
        {
            let mut lw = self.lanes[self.lane_idx(lane)].lock().unwrap();
            for &e in enqueued_ns {
                lw.hist.record(now_ns, now_ns.saturating_sub(e));
            }
            lw.thru.add(now_ns, enqueued_ns.len() as u64);
        }
        let mut g = self.global.lock().unwrap();
        for &e in enqueued_ns {
            g.hist.record(now_ns, now_ns.saturating_sub(e));
        }
        g.thru.add(now_ns, enqueued_ns.len() as u64);
        let slo = self.cfg.slo_p99_ns?;
        g.hist
            .snapshot(now_ns, "serve.window")
            .quantile_opt(0.99)
            .filter(|&p99| p99 > slo)
    }

    fn stats_of(w: &mut LaneWindow, now_ns: u64) -> WindowStats {
        let snap = w.hist.snapshot(now_ns, "serve.window");
        WindowStats {
            count: snap.count,
            p50_ns: snap.quantile_opt(0.5),
            p95_ns: snap.quantile_opt(0.95),
            p99_ns: snap.quantile_opt(0.99),
            qps: w.thru.rate_per_sec(now_ns),
        }
    }

    /// Window snapshot of one lane (model index order, scan last).
    pub(crate) fn lane_stats(&self, idx: usize, now_ns: u64) -> WindowStats {
        Self::stats_of(&mut self.lanes[idx].lock().unwrap(), now_ns)
    }

    /// Window snapshot of the global aggregate.
    pub(crate) fn global_stats(&self, now_ns: u64) -> WindowStats {
        Self::stats_of(&mut self.global.lock().unwrap(), now_ns)
    }

    /// Number of lanes (models + scan).
    pub(crate) fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Anomaly path: writes a flight-recorder dump named after `reason`
    /// into the configured directory, if the recorder is armed and the
    /// cooldown allows it. Never takes the server down — a write failure
    /// warns and moves on.
    pub(crate) fn maybe_dump(&self, reason: &str, now_ns: u64) {
        if !yali_obs::recorder::recorder_on() {
            return;
        }
        let last = self.last_dump_ns.load(Ordering::Relaxed);
        if !should_dump(true, last, now_ns, self.cfg.dump_cooldown_ns) {
            return;
        }
        // One dumper wins the race; losers skip (their anomaly is in the
        // winner's dump anyway).
        if self
            .last_dump_ns
            .compare_exchange(last, now_ns.max(1), Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let (dump, stats) = yali_obs::recorder::dump();
        let path = self
            .cfg
            .dump_dir
            .join(format!("yali-serve-flight-{reason}-{now_ns}.jsonl"));
        match std::fs::write(&path, &dump) {
            Ok(()) => {
                yali_obs::count!("serve.flight_dumps", 1);
                yali_obs::warn(&format!(
                    "anomaly ({reason}): dumped {} flight-recorder events to {}",
                    stats.events,
                    path.display()
                ));
            }
            Err(e) => {
                yali_obs::warn(&format!(
                    "anomaly ({reason}): flight-recorder dump to {} failed: {e}",
                    path.display()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn should_dump_respects_breach_and_cooldown() {
        let cd = 5_000_000_000;
        assert!(!should_dump(false, 0, 0, cd), "no anomaly, no dump");
        assert!(should_dump(true, 0, 0, cd), "first anomaly always dumps");
        assert!(!should_dump(true, 1, 1 + cd - 1, cd), "inside cooldown");
        assert!(should_dump(true, 1, 1 + cd, cd), "cooldown elapsed");
        assert!(
            !should_dump(true, 10, 3, cd),
            "a stale clock must not re-trigger"
        );
    }

    #[test]
    fn observe_feeds_lane_and_global_and_flags_slo_breach() {
        let cfg = LiveConfig {
            slo_p99_ns: Some(1_000),
            ..LiveConfig::default()
        };
        let live = Live::new(cfg, 2);
        assert_eq!(live.n_lanes(), 3);
        // Fast rows: under the SLO, no breach.
        assert_eq!(live.observe(0, &[900, 950], 1_000), None);
        // Slow rows on the scan lane: global windowed p99 breaches.
        let breach = live.observe(SCAN_LANE, &[0], 1_000_000);
        assert!(breach.is_some_and(|p99| p99 > 1_000), "{breach:?}");
        let g = live.global_stats(1_000_000);
        assert_eq!(g.count, 3);
        assert!(g.p99_ns.is_some());
        assert!(g.qps > 0.0);
        // Lane attribution: lane 0 got the fast rows, scan got the slow
        // one, lane 1 stayed idle (and has no quantiles, not zeros).
        assert_eq!(live.lane_stats(0, 1_000_000).count, 2);
        assert_eq!(live.lane_stats(2, 1_000_000).count, 1);
        let idle = live.lane_stats(1, 1_000_000);
        assert_eq!(idle.count, 0);
        assert_eq!(idle.p99_ns, None);
        assert_eq!(idle.qps, 0.0);
    }

    #[test]
    fn observe_without_slo_never_breaches() {
        let live = Live::new(LiveConfig::default(), 1);
        assert_eq!(live.observe(0, &[0], u32::MAX as u64), None);
    }

    #[test]
    fn maybe_dump_writes_once_per_cooldown() {
        let dir = std::env::temp_dir().join(format!(
            "yali_live_dump_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = LiveConfig {
            dump_dir: dir.clone(),
            dump_cooldown_ns: 1_000_000_000,
            ..LiveConfig::default()
        };
        let live = Live::new(cfg, 1);
        yali_obs::recorder::set_recorder(Some(64));
        live.maybe_dump("test", 10);
        live.maybe_dump("test", 20); // inside cooldown: skipped
        yali_obs::recorder::set_recorder(None);
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with("yali-serve-flight-test-")
            })
            .collect();
        assert_eq!(dumps.len(), 1, "cooldown must rate-limit");
        // The dump is a parseable trace even if no spans were recorded
        // (meta line only).
        let text = std::fs::read_to_string(dumps[0].path()).unwrap();
        assert!(text.starts_with("{\"ev\":\"recorder\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
