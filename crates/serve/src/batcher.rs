//! The deadline/size batcher: the server's coalescing core, kept pure.
//!
//! A [`Batcher`] holds pending work in per-lane FIFO queues (one lane per
//! model, one for the scanner) under one global admission cap, and
//! decides *when* a lane dispatches: at [`BatcherConfig::max_batch`] rows,
//! or when the lane's oldest row has waited
//! [`BatcherConfig::deadline_ns`], whichever comes first — "dispatch at
//! 32 rows or 2 ms".
//!
//! The struct is deliberately socket-free and clock-free: every method
//! takes `now_ns` from the caller, so the proptests drive arbitrary
//! arrival orders and clock schedules deterministically, and the batching
//! policy is testable without a single thread or TCP connection. The
//! server supplies `yali_obs::epoch_ns()` as the clock.
//!
//! Invariants (proptested in `tests/batcher_props.rs`):
//!
//! * every offered item is popped exactly once, in FIFO order per lane;
//! * no batch exceeds `max_batch` rows or mixes lanes;
//! * `offer` refuses (and the batcher is unchanged) exactly when the
//!   global queue is at `queue_cap`;
//! * a lane with `max_batch` rows is dispatchable immediately; an
//!   underfull lane is dispatchable exactly from its oldest row's
//!   enqueue time plus `deadline_ns`.

use std::collections::{BTreeMap, VecDeque};

/// Batching policy knobs (see the crate root for the `YALI_SERVE_*`
/// environment variables that feed them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Dispatch a lane as soon as it holds this many rows; no batch is
    /// ever larger. The serving default is `yali_ml::INFER_CHUNK`, so a
    /// full batch is exactly one inference chunk.
    pub max_batch: usize,
    /// Dispatch an underfull lane once its oldest row has waited this
    /// long (the latency bound a mostly-idle server puts on coalescing).
    pub deadline_ns: u64,
    /// Global admission cap across all lanes; `offer` refuses beyond it.
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: yali_ml::INFER_CHUNK,
            deadline_ns: 2_000_000, // 2 ms
            queue_cap: 1024,
        }
    }
}

/// One queued item plus its enqueue time (the dispatch path turns the
/// difference into the queue-wait histogram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pending<T> {
    /// The queued work item.
    pub item: T,
    /// Clock reading when `offer` accepted the item.
    pub enqueued_ns: u64,
}

/// Why a batch dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// The lane reached `max_batch` rows.
    Full,
    /// The lane's oldest row aged past `deadline_ns`.
    Deadline,
    /// Shutdown drain ([`Batcher::pop_any`]).
    Drain,
}

/// One dispatched batch: up to `max_batch` rows from a single lane, in
/// arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch<T> {
    /// The lane every row came from.
    pub lane: u32,
    /// The rows, oldest first.
    pub items: Vec<Pending<T>>,
    /// What fired the dispatch.
    pub trigger: Trigger,
}

/// The pure batching state machine. See the module docs for the
/// invariants.
#[derive(Debug)]
pub struct Batcher<T> {
    cfg: BatcherConfig,
    lanes: BTreeMap<u32, VecDeque<Pending<T>>>,
    len: usize,
}

impl<T> Batcher<T> {
    /// An empty batcher with the given policy. `max_batch` and
    /// `queue_cap` are clamped to at least 1 — a zero would deadlock
    /// every request, and misconfiguration must degrade, not hang.
    pub fn new(cfg: BatcherConfig) -> Self {
        let cfg = BatcherConfig {
            max_batch: cfg.max_batch.max(1),
            queue_cap: cfg.queue_cap.max(1),
            ..cfg
        };
        Batcher {
            cfg,
            lanes: BTreeMap::new(),
            len: 0,
        }
    }

    /// The active policy.
    pub fn config(&self) -> BatcherConfig {
        self.cfg
    }

    /// Total queued rows across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Admits one item into `lane` at clock `now_ns`. Returns `false` —
    /// and leaves the batcher untouched — when the global queue is at
    /// `queue_cap`; the caller answers `overloaded` instead of queueing.
    pub fn offer(&mut self, lane: u32, item: T, now_ns: u64) -> bool {
        if self.len >= self.cfg.queue_cap {
            return false;
        }
        self.lanes.entry(lane).or_default().push_back(Pending {
            item,
            enqueued_ns: now_ns,
        });
        self.len += 1;
        true
    }

    /// The clock reading at which [`Batcher::pop_ready`] will next have
    /// work, or `None` when empty. A full lane is ready immediately (its
    /// own deadline is reported, which is already in the past or moot);
    /// otherwise this is the earliest oldest-row deadline — the
    /// dispatcher sleeps until this instant, or until `offer` wakes it.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        for q in self.lanes.values() {
            let Some(front) = q.front() else { continue };
            let at = if q.len() >= self.cfg.max_batch {
                front.enqueued_ns // full: ready since its oldest row arrived
            } else {
                front.enqueued_ns + self.cfg.deadline_ns
            };
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Removes and returns the next dispatchable batch at clock `now_ns`,
    /// or `None` when no lane is full and no deadline has expired. Full
    /// lanes win over expired ones (they bound memory); ties break toward
    /// the lane whose oldest row has waited longest, then the lowest lane
    /// id — deterministic for the proptests.
    pub fn pop_ready(&mut self, now_ns: u64) -> Option<Batch<T>> {
        let pick = |pred: &dyn Fn(&VecDeque<Pending<T>>) -> bool| -> Option<u32> {
            self.lanes
                .iter()
                .filter(|(_, q)| !q.is_empty() && pred(q))
                // min_by_key is stable-first on ties, and the BTreeMap
                // iterates in ascending lane order.
                .min_by_key(|(_, q)| q.front().map_or(u64::MAX, |p| p.enqueued_ns))
                .map(|(&lane, _)| lane)
        };
        let full = pick(&|q| q.len() >= self.cfg.max_batch);
        let (lane, trigger) = match full {
            Some(lane) => (lane, Trigger::Full),
            None => {
                let deadline = self.cfg.deadline_ns;
                let expired = pick(&|q| {
                    q.front()
                        .is_some_and(|p| now_ns.saturating_sub(p.enqueued_ns) >= deadline)
                })?;
                (expired, Trigger::Deadline)
            }
        };
        Some(self.take_from(lane, trigger))
    }

    /// Removes and returns any remaining batch regardless of deadlines —
    /// the shutdown drain. `None` once empty.
    pub fn pop_any(&mut self) -> Option<Batch<T>> {
        let lane = *self.lanes.iter().find(|(_, q)| !q.is_empty())?.0;
        Some(self.take_from(lane, Trigger::Drain))
    }

    fn take_from(&mut self, lane: u32, trigger: Trigger) -> Batch<T> {
        let q = self.lanes.get_mut(&lane).expect("lane exists");
        let take = q.len().min(self.cfg.max_batch);
        let items: Vec<Pending<T>> = q.drain(..take).collect();
        if q.is_empty() {
            self.lanes.remove(&lane);
        }
        self.len -= items.len();
        Batch {
            lane,
            items,
            trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, deadline_ns: u64, queue_cap: usize) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            deadline_ns,
            queue_cap,
        }
    }

    #[test]
    fn full_lane_dispatches_before_the_deadline() {
        let mut b = Batcher::new(cfg(3, 1_000, 100));
        assert!(b.offer(0, "a", 10));
        assert!(b.offer(0, "b", 11));
        assert!(b.pop_ready(12).is_none(), "underfull and young: not ready");
        assert!(b.offer(0, "c", 12));
        let batch = b.pop_ready(12).expect("full lane is ready immediately");
        assert_eq!(batch.lane, 0);
        assert_eq!(batch.trigger, Trigger::Full);
        let items: Vec<&str> = batch.items.iter().map(|p| p.item).collect();
        assert_eq!(items, ["a", "b", "c"]);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_fires_for_an_underfull_lane() {
        let mut b = Batcher::new(cfg(32, 1_000, 100));
        assert!(b.offer(2, 7u32, 100));
        assert_eq!(b.next_deadline_ns(), Some(1_100));
        assert!(b.pop_ready(1_099).is_none());
        let batch = b.pop_ready(1_100).expect("deadline reached");
        assert_eq!(batch.trigger, Trigger::Deadline);
        assert_eq!(batch.lane, 2);
        assert_eq!(batch.items.len(), 1);
        assert_eq!(b.next_deadline_ns(), None);
    }

    #[test]
    fn admission_cap_refuses_without_mutating() {
        let mut b = Batcher::new(cfg(4, 1_000, 2));
        assert!(b.offer(0, 1, 0));
        assert!(b.offer(1, 2, 0));
        assert!(!b.offer(0, 3, 0), "at cap: refused");
        assert_eq!(b.len(), 2);
        // Popping frees capacity again.
        let _ = b.pop_ready(5_000).expect("deadline expired");
        assert!(b.offer(0, 3, 5_000));
    }

    #[test]
    fn oldest_lane_wins_ties_and_batches_never_mix_lanes() {
        let mut b = Batcher::new(cfg(2, 100, 100));
        assert!(b.offer(5, "late", 50));
        assert!(b.offer(3, "early", 40));
        // Both expired at t=200; lane 3's row is older.
        let first = b.pop_ready(200).unwrap();
        assert_eq!(first.lane, 3);
        let second = b.pop_ready(200).unwrap();
        assert_eq!(second.lane, 5);
    }

    #[test]
    fn pop_any_drains_everything_in_lane_order() {
        let mut b = Batcher::new(cfg(2, 1 << 60, 100));
        for i in 0..5 {
            assert!(b.offer(i % 2, i, 0));
        }
        let mut drained = 0;
        while let Some(batch) = b.pop_any() {
            assert!(batch.items.len() <= 2);
            assert_eq!(batch.trigger, Trigger::Drain);
            drained += batch.items.len();
        }
        assert_eq!(drained, 5);
        assert!(b.is_empty());
    }

    #[test]
    fn zero_knobs_are_clamped_to_one() {
        let b: Batcher<u8> = Batcher::new(cfg(0, 0, 0));
        assert_eq!(b.config().max_batch, 1);
        assert_eq!(b.config().queue_cap, 1);
    }
}
