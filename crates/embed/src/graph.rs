//! Graph-based program embeddings: `cfg`, `cfg_compact`, `cdfg`,
//! `cdfg_compact`, `cdfg_plus`, and `programl`.
//!
//! All six kinds produce a [`ProgramGraph`] with a uniform node-feature
//! dimensionality ([`NODE_DIM`]), so the DGCNN model in `yali-ml` consumes
//! any of them interchangeably. Following Brauckmann et al. and Cummins
//! et al., the kinds differ in node granularity (instructions vs. basic
//! blocks vs. instructions+values) and in which relations appear as edges
//! (control, data, calls, memory).

use std::collections::HashMap;
use yali_ir::{Module, Op, Value};

/// Node feature dimensionality shared by all graph embeddings:
/// 63 opcode slots (one-hot for instruction nodes, a histogram for block
/// nodes) plus 7 auxiliary dimensions.
pub const NODE_DIM: usize = Op::COUNT + 7;

const AUX_IS_BLOCK: usize = Op::COUNT;
const AUX_IS_VALUE: usize = Op::COUNT + 1;
const AUX_IS_FLOAT: usize = Op::COUNT + 2;
const AUX_IS_PTR: usize = Op::COUNT + 3;
const AUX_IS_CONST: usize = Op::COUNT + 4;
const AUX_DEGREE: usize = Op::COUNT + 5;
const AUX_BIAS: usize = Op::COUNT + 6;

/// The relation an edge encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Control flow.
    Control,
    /// Data flow (def → use).
    Data,
    /// Call relation.
    Call,
    /// May-alias memory relation (store → load on the same base pointer).
    Memory,
}

/// A graph-shaped program embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramGraph {
    /// Per-node feature vectors, each of length [`NODE_DIM`].
    pub feats: Vec<Vec<f64>>,
    /// Directed edges `(src, dst, kind)`.
    pub edges: Vec<(usize, usize, EdgeKind)>,
}

impl ProgramGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.feats.len()
    }

    /// Finalizes the graph: fills the degree feature and the bias.
    fn finish(mut self) -> ProgramGraph {
        let mut deg = vec![0usize; self.feats.len()];
        for &(s, d, _) in &self.edges {
            deg[s] += 1;
            deg[d] += 1;
        }
        for (f, d) in self.feats.iter_mut().zip(deg) {
            f[AUX_DEGREE] = d as f64 / 8.0;
            f[AUX_BIAS] = 1.0;
        }
        self
    }
}

fn inst_feat(op: Op) -> Vec<f64> {
    let mut f = vec![0.0; NODE_DIM];
    f[op.index()] = 1.0;
    f
}

/// Which graph flavour to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Instruction-level control-flow graph (Brauckmann et al.).
    Cfg,
    /// Basic-block-level CFG with per-block opcode histograms (Faustino).
    CfgCompact,
    /// Instruction-level control+data flow graph.
    Cdfg,
    /// Block-level control+data flow graph.
    CdfgCompact,
    /// CDFG plus call and memory edges.
    CdfgPlus,
    /// ProGraML-style full graph: instructions plus value nodes.
    Programl,
}

/// Builds the requested graph embedding of the module.
///
/// # Examples
///
/// ```
/// use yali_embed::{graph, GraphKind};
/// let m = yali_minic::compile("int f(int a) { return a + 1; }")?;
/// let g = graph(&m, GraphKind::Cfg);
/// assert!(g.num_nodes() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn graph(m: &Module, kind: GraphKind) -> ProgramGraph {
    match kind {
        GraphKind::Cfg => inst_graph(m, false, false, false),
        GraphKind::Cdfg => inst_graph(m, true, false, false),
        GraphKind::CdfgPlus => inst_graph(m, true, true, true),
        GraphKind::CfgCompact => block_graph(m, false),
        GraphKind::CdfgCompact => block_graph(m, true),
        GraphKind::Programl => programl_graph(m),
    }
}

/// Instruction-level graphs (cfg / cdfg / cdfg_plus).
fn inst_graph(m: &Module, data: bool, calls: bool, memory: bool) -> ProgramGraph {
    let mut feats = Vec::new();
    let mut edges = Vec::new();
    // (function name, inst) -> node index; plus function entry nodes.
    let mut node_of: HashMap<(usize, yali_ir::InstId), usize> = HashMap::new();
    let mut entry_node: HashMap<&str, usize> = HashMap::new();
    let funcs: Vec<_> = m
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_declaration())
        .collect();
    for &(fi, f) in &funcs {
        for (_, i) in f.iter_insts() {
            let idx = feats.len();
            feats.push(inst_feat(f.inst(i).op));
            node_of.insert((fi, i), idx);
        }
        if let Some(&first) = f.block(f.entry()).insts.first() {
            entry_node.insert(f.name.as_str(), node_of[&(fi, first)]);
        }
    }
    for &(fi, f) in &funcs {
        for &b in f.block_order() {
            let insts = &f.block(b).insts;
            for w in insts.windows(2) {
                edges.push((node_of[&(fi, w[0])], node_of[&(fi, w[1])], EdgeKind::Control));
            }
            if let Some(t) = f.terminator(b) {
                for s in f.successors(b) {
                    if let Some(&first) = f.block(s).insts.first() {
                        edges.push((
                            node_of[&(fi, t)],
                            node_of[&(fi, first)],
                            EdgeKind::Control,
                        ));
                    }
                }
            }
        }
        if data {
            for (_, i) in f.iter_insts() {
                for a in &f.inst(i).args {
                    if let Value::Inst(d) = a {
                        if let Some(&dn) = node_of.get(&(fi, *d)) {
                            edges.push((dn, node_of[&(fi, i)], EdgeKind::Data));
                        }
                    }
                }
            }
        }
        if calls {
            for (_, i) in f.iter_insts() {
                let inst = f.inst(i);
                if inst.op == Op::Call {
                    if let Some(&target) = inst.callee.as_deref().and_then(|c| entry_node.get(c))
                    {
                        edges.push((node_of[&(fi, i)], target, EdgeKind::Call));
                    }
                }
            }
        }
        if memory {
            // Group memory ops by their base pointer operand; connect each
            // store to every load of the same base. A BTreeMap keeps the
            // edge order independent of the process's hash seed.
            let mut by_base: std::collections::BTreeMap<String, (Vec<usize>, Vec<usize>)> =
                std::collections::BTreeMap::new();
            for (_, i) in f.iter_insts() {
                let inst = f.inst(i);
                match inst.op {
                    Op::Load => {
                        let key = format!("{:?}", inst.args[0]);
                        by_base.entry(key).or_default().1.push(node_of[&(fi, i)]);
                    }
                    Op::Store => {
                        let key = format!("{:?}", inst.args[1]);
                        by_base.entry(key).or_default().0.push(node_of[&(fi, i)]);
                    }
                    _ => {}
                }
            }
            for (_, (stores, loads)) in by_base {
                for &s in &stores {
                    for &l in &loads {
                        edges.push((s, l, EdgeKind::Memory));
                    }
                }
            }
        }
    }
    ProgramGraph { feats, edges }.finish()
}

/// Block-level graphs (cfg_compact / cdfg_compact): nodes are basic blocks
/// carrying opcode histograms.
fn block_graph(m: &Module, data: bool) -> ProgramGraph {
    let mut feats = Vec::new();
    let mut edges = Vec::new();
    let funcs: Vec<_> = m
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_declaration())
        .collect();
    let mut node_of: HashMap<(usize, yali_ir::BlockId), usize> = HashMap::new();
    for &(fi, f) in &funcs {
        for &b in f.block_order() {
            let mut feat = vec![0.0; NODE_DIM];
            for &i in &f.block(b).insts {
                feat[f.inst(i).op.index()] += 1.0;
            }
            feat[AUX_IS_BLOCK] = 1.0;
            node_of.insert((fi, b), feats.len());
            feats.push(feat);
        }
    }
    for &(fi, f) in &funcs {
        // Placement map for data edges.
        let mut place: HashMap<yali_ir::InstId, yali_ir::BlockId> = HashMap::new();
        for (b, i) in f.iter_insts() {
            place.insert(i, b);
        }
        for &b in f.block_order() {
            for s in f.successors(b) {
                edges.push((node_of[&(fi, b)], node_of[&(fi, s)], EdgeKind::Control));
            }
            if data {
                let mut seen: std::collections::HashSet<yali_ir::BlockId> =
                    std::collections::HashSet::new();
                for &i in &f.block(b).insts {
                    for a in &f.inst(i).args {
                        if let Value::Inst(d) = a {
                            if let Some(&db) = place.get(d) {
                                if db != b && seen.insert(db) {
                                    edges.push((
                                        node_of[&(fi, db)],
                                        node_of[&(fi, b)],
                                        EdgeKind::Data,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    ProgramGraph { feats, edges }.finish()
}

/// ProGraML-style graph: instruction nodes, value nodes for every produced
/// value and parameter, data edges through the value nodes, control and
/// call edges between instructions.
fn programl_graph(m: &Module) -> ProgramGraph {
    let mut g = inst_graph(m, false, true, false);
    let funcs: Vec<_> = m
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_declaration())
        .collect();
    // Rebuild the instruction-node numbering used by inst_graph.
    let mut node_of: HashMap<(usize, yali_ir::InstId), usize> = HashMap::new();
    let mut next = 0usize;
    for &(fi, f) in &funcs {
        for (_, i) in f.iter_insts() {
            node_of.insert((fi, i), next);
            next += 1;
        }
    }
    for &(fi, f) in &funcs {
        // Value node per non-void instruction result.
        let mut value_node: HashMap<yali_ir::InstId, usize> = HashMap::new();
        for (_, i) in f.iter_insts() {
            let ty = &f.inst(i).ty;
            if ty.is_void() {
                continue;
            }
            let mut feat = vec![0.0; NODE_DIM];
            feat[AUX_IS_VALUE] = 1.0;
            if ty.is_float() {
                feat[AUX_IS_FLOAT] = 1.0;
            }
            if ty.is_ptr() {
                feat[AUX_IS_PTR] = 1.0;
            }
            let vn = g.feats.len();
            g.feats.push(feat);
            value_node.insert(i, vn);
            g.edges.push((node_of[&(fi, i)], vn, EdgeKind::Data));
        }
        // Parameter value nodes.
        let mut param_node: HashMap<u32, usize> = HashMap::new();
        for (pi, ty) in f.params.iter().enumerate() {
            let mut feat = vec![0.0; NODE_DIM];
            feat[AUX_IS_VALUE] = 1.0;
            if ty.is_float() {
                feat[AUX_IS_FLOAT] = 1.0;
            }
            if ty.is_ptr() {
                feat[AUX_IS_PTR] = 1.0;
            }
            param_node.insert(pi as u32, g.feats.len());
            g.feats.push(feat);
        }
        // Constant nodes (one per distinct constant in the function).
        let mut const_node: HashMap<String, usize> = HashMap::new();
        for (_, i) in f.iter_insts() {
            for a in &f.inst(i).args {
                let user = node_of[&(fi, i)];
                match a {
                    Value::Inst(d) => {
                        if let Some(&vn) = value_node.get(d) {
                            g.edges.push((vn, user, EdgeKind::Data));
                        }
                    }
                    Value::Param(p) => {
                        g.edges.push((param_node[p], user, EdgeKind::Data));
                    }
                    c @ (Value::ConstInt(..) | Value::ConstFloat(_)) => {
                        let key = format!("{c:?}");
                        let vn = *const_node.entry(key).or_insert_with(|| {
                            let mut feat = vec![0.0; NODE_DIM];
                            feat[AUX_IS_VALUE] = 1.0;
                            feat[AUX_IS_CONST] = 1.0;
                            if matches!(c, Value::ConstFloat(_)) {
                                feat[AUX_IS_FLOAT] = 1.0;
                            }
                            g.feats.push(feat);
                            g.feats.len() - 1
                        });
                        g.edges.push((vn, user, EdgeKind::Data));
                    }
                    Value::Undef(_) => {}
                }
            }
        }
    }
    let graph = ProgramGraph {
        feats: g.feats,
        edges: g.edges,
    };
    graph.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        yali_minic::compile(src).expect("compile")
    }

    const SRC: &str = r#"
        int helper(int x) { return x * 2; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += helper(i); }
            return s;
        }
    "#;

    #[test]
    fn all_kinds_build_and_have_uniform_features() {
        let m = module(SRC);
        for kind in [
            GraphKind::Cfg,
            GraphKind::CfgCompact,
            GraphKind::Cdfg,
            GraphKind::CdfgCompact,
            GraphKind::CdfgPlus,
            GraphKind::Programl,
        ] {
            let g = graph(&m, kind);
            assert!(g.num_nodes() > 0, "{kind:?} empty");
            assert!(!g.edges.is_empty(), "{kind:?} has no edges");
            for f in &g.feats {
                assert_eq!(f.len(), NODE_DIM, "{kind:?} feature dim");
            }
            for &(s, d, _) in &g.edges {
                assert!(s < g.num_nodes() && d < g.num_nodes(), "{kind:?} edge oob");
            }
        }
    }

    #[test]
    fn compact_graphs_are_smaller() {
        let m = module(SRC);
        let full = graph(&m, GraphKind::Cfg);
        let compact = graph(&m, GraphKind::CfgCompact);
        assert!(compact.num_nodes() < full.num_nodes());
    }

    #[test]
    fn cdfg_has_strictly_more_edges_than_cfg() {
        let m = module(SRC);
        let cfg = graph(&m, GraphKind::Cfg);
        let cdfg = graph(&m, GraphKind::Cdfg);
        assert!(cdfg.edges.len() > cfg.edges.len());
        assert!(cdfg.edges.iter().any(|&(_, _, k)| k == EdgeKind::Data));
        assert!(cfg.edges.iter().all(|&(_, _, k)| k == EdgeKind::Control));
    }

    #[test]
    fn cdfg_plus_links_calls_and_memory() {
        let m = module(SRC);
        let g = graph(&m, GraphKind::CdfgPlus);
        assert!(g.edges.iter().any(|&(_, _, k)| k == EdgeKind::Call));
        assert!(g.edges.iter().any(|&(_, _, k)| k == EdgeKind::Memory));
    }

    #[test]
    fn programl_adds_value_nodes() {
        let m = module(SRC);
        let inst_only = graph(&m, GraphKind::Cfg);
        let programl = graph(&m, GraphKind::Programl);
        assert!(programl.num_nodes() > inst_only.num_nodes());
        // Value nodes are marked in the aux features.
        let n_values = programl
            .feats
            .iter()
            .filter(|f| f[Op::COUNT + 1] > 0.0)
            .count();
        assert!(n_values > 0);
    }

    #[test]
    fn block_histograms_sum_to_block_sizes() {
        let m = module("int f(int a) { return a + 1; }");
        let g = graph(&m, GraphKind::CfgCompact);
        let f = m.function("f").unwrap();
        let total: f64 = g.feats.iter().map(|x| x[..Op::COUNT].iter().sum::<f64>()).sum();
        assert_eq!(total, f.num_insts() as f64);
    }

    #[test]
    fn degree_feature_is_populated() {
        let m = module(SRC);
        let g = graph(&m, GraphKind::Cdfg);
        assert!(g.feats.iter().any(|f| f[Op::COUNT + 5] > 0.0));
        assert!(g.feats.iter().all(|f| f[Op::COUNT + 6] == 1.0));
    }
}
