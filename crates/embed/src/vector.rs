//! Array-valued program embeddings: `histogram`, `milepost`, and `ir2vec`.

use yali_ir::{Module, Op, Value};

/// The dimensionality of the opcode histogram (one slot per opcode).
pub const HISTOGRAM_DIM: usize = Op::COUNT;

/// The dimensionality of the MILEPOST-style static feature vector.
pub const MILEPOST_DIM: usize = 56;

/// The dimensionality of the ir2vec-style embedding.
pub const IR2VEC_DIM: usize = 64;

/// The opcode histogram: "a vector of 63 positions counting instruction
/// opcodes" (paper, Section 4.1). The workhorse embedding of the study.
///
/// # Examples
///
/// ```
/// let m = yali_minic::compile("int f(int a, int b) { return a + b; }")?;
/// let h = yali_embed::histogram(&m);
/// assert_eq!(h.len(), yali_embed::HISTOGRAM_DIM);
/// assert!(h[yali_ir::Op::Add.index()] >= 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn histogram(m: &Module) -> Vec<f64> {
    let mut h = vec![0.0; HISTOGRAM_DIM];
    for f in m.definitions() {
        for (_, i) in f.iter_insts() {
            h[f.inst(i).op.index()] += 1.0;
        }
    }
    h
}

/// MILEPOST-style static features (Namolaru et al.): counts of structural
/// CFG and instruction properties. 56 dimensions.
pub fn milepost(m: &Module) -> Vec<f64> {
    let mut ft = vec![0.0; MILEPOST_DIM];
    let mut add = |k: usize, v: f64| ft[k] += v;
    let mut n_funcs = 0.0;
    let mut n_blocks = 0.0;
    let mut n_insts = 0.0;
    for f in m.definitions() {
        n_funcs += 1.0;
        let preds = f.predecessors();
        for &b in f.block_order() {
            n_blocks += 1.0;
            let succs = f.successors(b);
            let np = preds.get(&b).map(Vec::len).unwrap_or(0);
            match succs.len() {
                0 => add(0, 1.0),
                1 => add(1, 1.0),
                2 => add(2, 1.0),
                _ => add(3, 1.0),
            }
            match np {
                0 => add(4, 1.0),
                1 => add(5, 1.0),
                2 => add(6, 1.0),
                _ => add(7, 1.0),
            }
            if succs.len() == 1 && np == 1 {
                add(8, 1.0); // linear blocks
            }
            if succs.len() > 1 && np > 1 {
                add(9, 1.0); // merge+branch blocks
            }
            let sz = f.block(b).insts.len() as f64;
            add(10, sz); // total placed instructions (per-block sum)
            if sz <= 3.0 {
                add(11, 1.0);
            } else if sz <= 10.0 {
                add(12, 1.0);
            } else {
                add(13, 1.0);
            }
            for s in &succs {
                if preds.get(s).map(Vec::len).unwrap_or(0) > 1 && succs.len() > 1 {
                    add(14, 1.0); // critical edges
                }
            }
            add(15, succs.len() as f64); // CFG edges
        }
        for (_, i) in f.iter_insts() {
            n_insts += 1.0;
            let inst = f.inst(i);
            let op = inst.op;
            match op {
                Op::Phi => add(16, 1.0),
                Op::Call => add(17, 1.0),
                Op::Load => add(18, 1.0),
                Op::Store => add(19, 1.0),
                Op::Alloca => add(20, 1.0),
                Op::Gep => add(21, 1.0),
                Op::ICmp => add(22, 1.0),
                Op::FCmp => add(23, 1.0),
                Op::Select => add(24, 1.0),
                Op::Switch => add(25, 1.0),
                Op::CondBr => add(26, 1.0),
                Op::Br => add(27, 1.0),
                Op::Ret => add(28, 1.0),
                Op::Unreachable => add(29, 1.0),
                _ => {}
            }
            if op.is_int_binop() {
                add(30, 1.0);
            }
            if op.is_float_binop() {
                add(31, 1.0);
            }
            if op.is_cast() {
                add(32, 1.0);
            }
            if matches!(op, Op::SDiv | Op::UDiv | Op::SRem | Op::URem | Op::FDiv) {
                add(33, 1.0);
            }
            if matches!(op, Op::Mul | Op::FMul) {
                add(34, 1.0);
            }
            if matches!(op, Op::Shl | Op::LShr | Op::AShr) {
                add(35, 1.0);
            }
            if matches!(op, Op::And | Op::Or | Op::Xor) {
                add(36, 1.0);
            }
            for a in &inst.args {
                match a {
                    Value::ConstInt(_, 0) => add(37, 1.0),
                    Value::ConstInt(_, 1) => add(38, 1.0),
                    Value::ConstInt(..) => add(39, 1.0),
                    Value::ConstFloat(_) => add(40, 1.0),
                    Value::Param(_) => add(41, 1.0),
                    Value::Inst(_) => add(42, 1.0),
                    Value::Undef(_) => add(43, 1.0),
                }
            }
            add(44, inst.args.len() as f64);
            if inst.ty.is_ptr() {
                add(45, 1.0);
            }
            if inst.ty.is_float() {
                add(46, 1.0);
            }
            if inst.ty == yali_ir::Type::I1 {
                add(47, 1.0);
            }
        }
        add(48, f.params.len() as f64);
        if f.ret.is_void() {
            add(49, 1.0);
        }
        // Back edges (loops): successor with smaller or equal layout index.
        let index: std::collections::HashMap<_, _> = f
            .block_order()
            .iter()
            .enumerate()
            .map(|(k, &b)| (b, k))
            .collect();
        for &b in f.block_order() {
            for s in f.successors(b) {
                if index[&s] <= index[&b] {
                    add(50, 1.0);
                }
            }
        }
    }
    ft[51] = n_funcs;
    ft[52] = n_blocks;
    ft[53] = n_insts;
    ft[54] = if n_blocks > 0.0 { n_insts / n_blocks } else { 0.0 };
    ft[55] = if n_funcs > 0.0 { n_blocks / n_funcs } else { 0.0 };
    ft
}

/// Deterministic pseudo-random unit-ish vector for an entity (seeded
/// embedding lookup, as ir2vec's seed vocabulary provides).
fn seed_vec(tag: u64, dim: usize) -> Vec<f64> {
    let mut state = tag.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03);
    let mut v = Vec::with_capacity(dim);
    for _ in 0..dim {
        // splitmix64
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        // Map to [-1, 1).
        v.push((z as f64 / u64::MAX as f64) * 2.0 - 1.0);
    }
    v
}

/// An ir2vec-style flow-aware embedding (VenkataKeerthy et al.).
///
/// Every (opcode, result type, operand kind) entity owns a fixed seed
/// vector; an instruction's vector combines them with the published
/// weights (opcode 1.0, type 0.5, operands 0.2), and a reverse-post-order
/// flow pass mixes 0.2 of each operand-defining instruction's vector into
/// its users. The program embedding is the sum over instructions.
pub fn ir2vec(m: &Module) -> Vec<f64> {
    const WO: f64 = 1.0;
    const WT: f64 = 0.5;
    const WA: f64 = 0.2;
    const WFLOW: f64 = 0.2;
    let mut total = vec![0.0; IR2VEC_DIM];
    for f in m.definitions() {
        // Instruction base vectors.
        let ids: Vec<yali_ir::InstId> = f.iter_insts().map(|(_, i)| i).collect();
        let mut vecs: std::collections::HashMap<yali_ir::InstId, Vec<f64>> =
            std::collections::HashMap::new();
        for &i in &ids {
            let inst = f.inst(i);
            let mut v = vec![0.0; IR2VEC_DIM];
            let opv = seed_vec(1000 + inst.op.index() as u64, IR2VEC_DIM);
            let tyv = seed_vec(2000 + type_tag(&inst.ty), IR2VEC_DIM);
            for k in 0..IR2VEC_DIM {
                v[k] += WO * opv[k] + WT * tyv[k];
            }
            for a in &inst.args {
                let av = seed_vec(3000 + operand_tag(a), IR2VEC_DIM);
                for k in 0..IR2VEC_DIM {
                    v[k] += WA * av[k] / inst.args.len().max(1) as f64;
                }
            }
            vecs.insert(i, v);
        }
        // One flow pass in RPO: users absorb a fraction of their operands'
        // instruction vectors.
        for &b in &yali_ir::cfg::reverse_post_order(f) {
            for &i in &f.block(b).insts.clone() {
                let inst = f.inst(i).clone();
                let mut acc = vec![0.0; IR2VEC_DIM];
                let mut found = 0usize;
                for a in &inst.args {
                    if let Value::Inst(d) = a {
                        if let Some(dv) = vecs.get(d) {
                            for k in 0..IR2VEC_DIM {
                                acc[k] += dv[k];
                            }
                            found += 1;
                        }
                    }
                }
                if found > 0 {
                    let v = vecs.get_mut(&i).unwrap();
                    for k in 0..IR2VEC_DIM {
                        v[k] += WFLOW * acc[k] / found as f64;
                    }
                }
            }
        }
        // Sum in stable instruction order so the embedding is bitwise
        // deterministic (HashMap order would perturb float summation).
        for i in &ids {
            let v = &vecs[i];
            for k in 0..IR2VEC_DIM {
                total[k] += v[k];
            }
        }
    }
    total
}

fn type_tag(t: &yali_ir::Type) -> u64 {
    match t {
        yali_ir::Type::Void => 0,
        yali_ir::Type::I1 => 1,
        yali_ir::Type::I8 => 2,
        yali_ir::Type::I32 => 3,
        yali_ir::Type::I64 => 4,
        yali_ir::Type::F64 => 5,
        yali_ir::Type::Ptr(inner) => 6 + type_tag(inner),
    }
}

fn operand_tag(v: &Value) -> u64 {
    match v {
        Value::Inst(_) => 0,
        Value::Param(_) => 1,
        Value::ConstInt(..) => 2,
        Value::ConstFloat(_) => 3,
        Value::Undef(_) => 4,
    }
}

/// Euclidean distance between two equal-length vectors (used by the paper's
/// Figure 10 analysis).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        yali_minic::compile(src).expect("compile")
    }

    #[test]
    fn histogram_counts_opcodes() {
        let m = module("int f(int a) { return a * a + 1; }");
        let h = histogram(&m);
        assert_eq!(h.iter().sum::<f64>(), m.num_insts() as f64);
        assert!(h[Op::Mul.index()] >= 1.0);
        assert!(h[Op::Ret.index()] >= 1.0);
    }

    #[test]
    fn histogram_dimension_is_63() {
        assert_eq!(HISTOGRAM_DIM, 63);
    }

    #[test]
    fn milepost_has_structure_features() {
        let straight = milepost(&module("int f(int a) { return a; }"));
        let loopy = milepost(&module(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
        ));
        assert_eq!(straight.len(), MILEPOST_DIM);
        // back-edge feature fires only for the loop
        assert_eq!(straight[50], 0.0);
        assert!(loopy[50] >= 1.0);
        assert!(loopy[52] > straight[52]); // more blocks
    }

    #[test]
    fn ir2vec_is_deterministic_and_flow_sensitive() {
        let m1 = module("int f(int a, int b) { return a + b * 2; }");
        let v1 = ir2vec(&m1);
        let v2 = ir2vec(&m1);
        assert_eq!(v1, v2);
        assert_eq!(v1.len(), IR2VEC_DIM);
        // A different dataflow arrangement of the same opcodes embeds
        // differently.
        let m2 = module("int f(int a, int b) { return (a + b) * 2; }");
        assert!(euclidean(&v1, &ir2vec(&m2)) > 1e-9);
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn different_programs_have_different_histograms() {
        let a = histogram(&module("int f(int x) { return x + 1; }"));
        let b = histogram(&module("float f(float x) { return x * 2.0; }"));
        assert!(euclidean(&a, &b) > 0.0);
    }

    #[test]
    fn seed_vectors_differ_by_tag() {
        assert_ne!(seed_vec(1, 8), seed_vec(2, 8));
        assert_eq!(seed_vec(7, 8), seed_vec(7, 8));
    }
}
