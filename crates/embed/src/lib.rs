//! # yali-embed
//!
//! The nine program embeddings evaluated by "A Game-Based Framework to
//! Compare Program Classifiers and Evaders" (CGO 2023), computed over
//! [`yali_ir`] modules:
//!
//! | name | form | source |
//! |------|------|--------|
//! | `histogram` | 63-dim opcode counts | Silva et al. |
//! | `milepost` | 56 static features | Namolaru et al. |
//! | `ir2vec` | 64-dim flow-aware seeds | VenkataKeerthy et al. |
//! | `cfg` / `cdfg` / `cdfg_plus` | instruction graphs | Brauckmann et al. |
//! | `cfg_compact` / `cdfg_compact` | basic-block graphs | Faustino |
//! | `programl` | instruction+value graph | Cummins et al. |
//!
//! Array embeddings feed every model in `yali-ml`; graph embeddings feed
//! the DGCNN. [`EmbeddingKind`] enumerates all nine uniformly.
//!
//! # Example
//!
//! ```
//! use yali_embed::{EmbeddingKind, Embedding};
//! let m = yali_minic::compile("int f(int a) { return a * a; }")?;
//! for kind in EmbeddingKind::ALL {
//!     match kind.embed(&m) {
//!         Embedding::Vector(v) => assert_eq!(v.len(), kind.vector_dim().unwrap()),
//!         Embedding::Graph(g) => assert!(g.num_nodes() > 0),
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod vector;

pub use graph::{graph, EdgeKind, GraphKind, ProgramGraph, NODE_DIM};
pub use vector::{euclidean, histogram, ir2vec, milepost, HISTOGRAM_DIM, IR2VEC_DIM, MILEPOST_DIM};

use yali_ir::Module;

/// A computed program embedding: either a flat vector or an attributed
/// graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Embedding {
    /// Array form (histogram, milepost, ir2vec).
    Vector(Vec<f64>),
    /// Graph form (cfg, cdfg, …, programl).
    Graph(ProgramGraph),
}

/// One of the paper's nine embedding functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddingKind {
    /// 63-dim opcode histogram.
    Histogram,
    /// 56 MILEPOST-style static features.
    Milepost,
    /// 64-dim ir2vec-style embedding.
    Ir2Vec,
    /// Instruction-level CFG.
    Cfg,
    /// Block-level CFG.
    CfgCompact,
    /// Instruction-level control+data flow graph.
    Cdfg,
    /// Block-level control+data flow graph.
    CdfgCompact,
    /// CDFG with call and memory edges.
    CdfgPlus,
    /// ProGraML-style graph.
    Programl,
}

impl EmbeddingKind {
    /// All nine embeddings, in the paper's Figure 5 order.
    pub const ALL: [EmbeddingKind; 9] = [
        EmbeddingKind::Cfg,
        EmbeddingKind::CfgCompact,
        EmbeddingKind::Cdfg,
        EmbeddingKind::CdfgCompact,
        EmbeddingKind::CdfgPlus,
        EmbeddingKind::Programl,
        EmbeddingKind::Ir2Vec,
        EmbeddingKind::Milepost,
        EmbeddingKind::Histogram,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            EmbeddingKind::Histogram => "histogram",
            EmbeddingKind::Milepost => "milepost",
            EmbeddingKind::Ir2Vec => "ir2vec",
            EmbeddingKind::Cfg => "cfg",
            EmbeddingKind::CfgCompact => "cfg_compact",
            EmbeddingKind::Cdfg => "cdfg",
            EmbeddingKind::CdfgCompact => "cdfg_compact",
            EmbeddingKind::CdfgPlus => "cdfg_plus",
            EmbeddingKind::Programl => "programl",
        }
    }

    /// True for the graph-shaped embeddings (DGCNN-only).
    pub fn is_graph(self) -> bool {
        matches!(
            self,
            EmbeddingKind::Cfg
                | EmbeddingKind::CfgCompact
                | EmbeddingKind::Cdfg
                | EmbeddingKind::CdfgCompact
                | EmbeddingKind::CdfgPlus
                | EmbeddingKind::Programl
        )
    }

    /// Output dimensionality for vector embeddings (`None` for graphs).
    pub fn vector_dim(self) -> Option<usize> {
        match self {
            EmbeddingKind::Histogram => Some(HISTOGRAM_DIM),
            EmbeddingKind::Milepost => Some(MILEPOST_DIM),
            EmbeddingKind::Ir2Vec => Some(IR2VEC_DIM),
            _ => None,
        }
    }

    /// Computes this embedding of the module.
    pub fn embed(self, m: &Module) -> Embedding {
        match self {
            EmbeddingKind::Histogram => Embedding::Vector(histogram(m)),
            EmbeddingKind::Milepost => Embedding::Vector(milepost(m)),
            EmbeddingKind::Ir2Vec => Embedding::Vector(ir2vec(m)),
            EmbeddingKind::Cfg => Embedding::Graph(graph(m, GraphKind::Cfg)),
            EmbeddingKind::CfgCompact => Embedding::Graph(graph(m, GraphKind::CfgCompact)),
            EmbeddingKind::Cdfg => Embedding::Graph(graph(m, GraphKind::Cdfg)),
            EmbeddingKind::CdfgCompact => Embedding::Graph(graph(m, GraphKind::CdfgCompact)),
            EmbeddingKind::CdfgPlus => Embedding::Graph(graph(m, GraphKind::CdfgPlus)),
            EmbeddingKind::Programl => Embedding::Graph(graph(m, GraphKind::Programl)),
        }
    }
}

impl std::fmt::Display for EmbeddingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_embeddings() {
        assert_eq!(EmbeddingKind::ALL.len(), 9);
        let names: std::collections::HashSet<&str> =
            EmbeddingKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn graph_vector_split_matches_paper() {
        let graphs = EmbeddingKind::ALL.iter().filter(|k| k.is_graph()).count();
        assert_eq!(graphs, 6);
        for k in EmbeddingKind::ALL {
            assert_eq!(k.is_graph(), k.vector_dim().is_none());
        }
    }

    #[test]
    fn embed_dispatch_works() {
        let m = yali_minic::compile("int f() { return 1; }").unwrap();
        assert!(matches!(
            EmbeddingKind::Histogram.embed(&m),
            Embedding::Vector(_)
        ));
        assert!(matches!(EmbeddingKind::Cfg.embed(&m), Embedding::Graph(_)));
    }
}
