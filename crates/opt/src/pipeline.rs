//! Optimization pipelines mirroring clang's `-O0` … `-O3` levels.

use crate::{combine, dce, gvn, inline, licm, mem2reg};
use yali_ir::Module;

/// An optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// No optimization (the front end's raw output).
    #[default]
    O0,
    /// SSA construction plus local cleanups.
    O1,
    /// `O1` plus redundancy elimination and code motion.
    O2,
    /// `O2` plus inlining and an extra cleanup round.
    O3,
}

impl OptLevel {
    /// All levels, weakest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// The conventional flag spelling (`-O2`).
    pub fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.flag())
    }
}

fn cleanup(m: &mut Module) {
    combine::run_module(m);
    crate::simplify::run_module(m);
    dce::run_module(m);
}

/// Optimizes the module in place at the given level.
///
/// # Examples
///
/// ```
/// use yali_opt::{optimize, OptLevel};
/// let mut m = yali_minic::compile("int f(int x) { int y = x; return y + 0; }")?;
/// let before = m.num_insts();
/// optimize(&mut m, OptLevel::O2);
/// assert!(m.num_insts() < before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(m: &mut Module, level: OptLevel) {
    match level {
        OptLevel::O0 => {}
        OptLevel::O1 => {
            mem2reg::run_module(m);
            cleanup(m);
            cleanup(m);
        }
        OptLevel::O2 => {
            mem2reg::run_module(m);
            cleanup(m);
            gvn::run_module(m);
            licm::run_module(m);
            cleanup(m);
            gvn::run_module(m);
            dce::run_module(m);
        }
        OptLevel::O3 => {
            mem2reg::run_module(m);
            cleanup(m);
            inline::run_module(m, &inline::InlineConfig::default());
            mem2reg::run_module(m);
            cleanup(m);
            gvn::run_module(m);
            licm::run_module(m);
            cleanup(m);
            gvn::run_module(m);
            licm::run_module(m);
            cleanup(m);
        }
    }
}

/// Returns an optimized copy of the module.
pub fn optimized(m: &Module, level: OptLevel) -> Module {
    let mut copy = m.clone();
    optimize(&mut copy, level);
    copy
}

/// Runs only SSA construction (the `-mem2reg` transformer of RQ7).
pub fn mem2reg_only(m: &mut Module) {
    mem2reg::run_module(m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    const PROGRAM: &str = r#"
        int helper(int x) { return x * 2 + 1; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (helper(i) % 3 == 0) { s += i; } else { s -= 1; }
            }
            return s;
        }
    "#;

    #[test]
    fn all_levels_verify_and_agree() {
        let m0 = yali_minic::compile(PROGRAM).unwrap();
        let reference = exec(&m0, "f", &[Val::Int(50)], &[], &ExecConfig::default())
            .unwrap()
            .ret;
        for level in OptLevel::ALL {
            let m = optimized(&m0, level);
            verify_module(&m).unwrap_or_else(|e| panic!("{level}: {e}"));
            let out = exec(&m, "f", &[Val::Int(50)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(out.ret, reference, "semantics diverged at {level}");
        }
    }

    #[test]
    fn higher_levels_run_fewer_steps() {
        let m0 = yali_minic::compile(PROGRAM).unwrap();
        let steps = |m: &Module| {
            exec(m, "f", &[Val::Int(80)], &[], &ExecConfig::default())
                .unwrap()
                .steps
        };
        let s0 = steps(&m0);
        let s1 = steps(&optimized(&m0, OptLevel::O1));
        let s3 = steps(&optimized(&m0, OptLevel::O3));
        assert!(s1 < s0, "O1 ({s1}) should beat O0 ({s0})");
        assert!(s3 < s1, "O3 ({s3}) should beat O1 ({s1})");
    }

    #[test]
    fn o3_inlines_the_helper() {
        let m = optimized(&yali_minic::compile(PROGRAM).unwrap(), OptLevel::O3);
        let f = m.function("f").unwrap();
        let calls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == yali_ir::Op::Call)
            .count();
        assert_eq!(calls, 0);
    }

    #[test]
    fn optimization_changes_the_opcode_histogram() {
        // The premise of RQ3: optimizers are evaders too.
        let m0 = yali_minic::compile(PROGRAM).unwrap();
        let m3 = optimized(&m0, OptLevel::O3);
        let histo = |m: &Module| {
            let mut h = vec![0usize; yali_ir::Op::COUNT];
            for f in m.definitions() {
                for (_, i) in f.iter_insts() {
                    h[f.inst(i).op.index()] += 1;
                }
            }
            h
        };
        assert_ne!(histo(&m0), histo(&m3));
    }

    #[test]
    fn flags_render() {
        assert_eq!(OptLevel::O3.flag(), "-O3");
        assert_eq!(OptLevel::default(), OptLevel::O0);
    }
}
