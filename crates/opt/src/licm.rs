//! Loop-invariant code motion.
//!
//! Natural loops are discovered through back edges (`latch -> header` where
//! the header dominates the latch). A pure, non-trapping instruction whose
//! operands are all defined outside the loop is hoisted to the end of the
//! header's immediate dominator — a conservative hoist point that never
//! requires building a preheader. Division and remainder are never hoisted
//! (they can trap when speculated).

use std::collections::{HashMap, HashSet};
use yali_ir::{BlockId, DomTree, Function, InstId, Module, Op, Value};

/// Runs LICM on every definition. Returns the number of hoisted
/// instructions.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .sum()
}

/// A natural loop: its header and body blocks.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: HashSet<BlockId>,
}

/// Finds the natural loops of `f` (one per header; bodies of shared headers
/// are merged).
pub fn natural_loops(f: &Function, dt: &DomTree) -> Vec<NaturalLoop> {
    let mut loops: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    let preds = f.predecessors();
    for &b in f.block_order() {
        for s in f.successors(b) {
            if dt.dominates(s, b) {
                // Back edge b -> s.
                let body = loops.entry(s).or_insert_with(|| {
                    let mut set = HashSet::new();
                    set.insert(s);
                    set
                });
                // Walk backwards from the latch collecting the body.
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for &p in preds.get(&x).map(Vec::as_slice).unwrap_or(&[]) {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    loops
        .into_iter()
        .map(|(header, body)| NaturalLoop { header, body })
        .collect()
}

fn hoistable(op: Op) -> bool {
    (op.is_int_binop() && !matches!(op, Op::SDiv | Op::UDiv | Op::SRem | Op::URem))
        || matches!(op, Op::FAdd | Op::FSub | Op::FMul | Op::FNeg)
        || op.is_cast()
        || matches!(op, Op::ICmp | Op::FCmp | Op::Select | Op::Gep)
}

/// Runs LICM on one function.
pub fn run(f: &mut Function) -> usize {
    if f.is_declaration() {
        return 0;
    }
    let mut hoisted = 0;
    loop {
        let dt = DomTree::build(f);
        let loops = natural_loops(f, &dt);
        if loops.is_empty() {
            return hoisted;
        }
        // Placement of every instruction.
        let mut place: HashMap<InstId, BlockId> = HashMap::new();
        for (b, i) in f.iter_insts() {
            place.insert(i, b);
        }
        let mut moved_any = false;
        for l in &loops {
            let Some(pre) = dt.idom(l.header) else { continue };
            if pre == l.header || l.body.contains(&pre) {
                continue;
            }
            for &b in l.body.iter() {
                let insts: Vec<InstId> = f.block(b).insts.clone();
                for i in insts {
                    let inst = f.inst(i);
                    if !hoistable(inst.op) {
                        continue;
                    }
                    // All operands defined outside the loop, at points that
                    // dominate the hoist target.
                    let ok = inst.args.iter().all(|a| match a {
                        Value::Inst(d) => match place.get(d) {
                            Some(db) => !l.body.contains(db) && dt.dominates(*db, pre),
                            None => false,
                        },
                        _ => true,
                    });
                    if !ok {
                        continue;
                    }
                    // Move before the terminator of `pre`.
                    f.remove_from_block(b, i);
                    let at = f.block(pre).insts.len().saturating_sub(1);
                    f.insert_inst(pre, at, i);
                    place.insert(i, pre);
                    hoisted += 1;
                    moved_any = true;
                }
            }
        }
        if !moved_any {
            return hoisted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn opt(src: &str) -> Module {
        let mut m = yali_minic::compile(src).expect("compile");
        crate::mem2reg::run_module(&mut m);
        crate::simplify::run_module(&mut m);
        run_module(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        m
    }

    #[test]
    fn finds_the_loop() {
        let m = yali_minic::compile("int f(int n) { int s = 0; while (s < n) { s++; } return s; }")
            .unwrap();
        let f = m.function("f").unwrap();
        let dt = DomTree::build(f);
        let loops = natural_loops(f, &dt);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].body.len() >= 2);
    }

    #[test]
    fn hoists_invariant_multiplication() {
        let src = "int f(int n, int k) { int s = 0; for (int i = 0; i < n; i++) { s += k * 31; } return s; }";
        let m = opt(src);
        let f = m.function("f").unwrap();
        let dt = DomTree::build(f);
        let loops = natural_loops(f, &dt);
        // The multiply should no longer live inside any loop body.
        for l in &loops {
            for &b in &l.body {
                for &i in &f.block(b).insts {
                    assert_ne!(f.inst(i).op, Op::Mul, "mul still in loop\n{f}");
                }
            }
        }
        let out = exec(
            &m,
            "f",
            &[Val::Int(4), Val::Int(2)],
            &[],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(248)));
    }

    #[test]
    fn division_is_not_hoisted() {
        // Hoisting k / n above the loop guard would trap when n == 0.
        let src = "int f(int n, int k) { int s = 0; for (int i = 0; i < n; i++) { s += k / n; } return s; }";
        let m = opt(src);
        let out = exec(
            &m,
            "f",
            &[Val::Int(0), Val::Int(5)],
            &[],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(0)));
    }

    #[test]
    fn loop_varying_values_stay() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * 2; } return s; }";
        let m = opt(src);
        let out = exec(&m, "f", &[Val::Int(5)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(20)));
    }

    #[test]
    fn nested_loops_semantics_hold() {
        let src = r#"
            int f(int n, int k) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < n; j++) {
                        s += (k * 7) + i + j;
                    }
                }
                return s;
            }
        "#;
        let m0 = yali_minic::compile(src).unwrap();
        let m1 = opt(src);
        for (n, k) in [(0i64, 1i64), (3, 2), (5, -1)] {
            let args = [Val::Int(n), Val::Int(k)];
            let a = exec(&m0, "f", &args, &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &args, &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "n={n} k={k}");
        }
    }
}
