//! Promotion of stack slots to SSA registers (`mem2reg`).
//!
//! The classic SSA-construction algorithm: phi insertion at iterated
//! dominance frontiers, followed by renaming along the dominator tree.
//! An alloca is *promotable* when it allocates a single scalar element and
//! is only ever used as the direct pointer of `load`s and `store`s.
//!
//! This is the pass the paper credits with reverting source-level
//! obfuscation: "the SSA conversion that LLVM uses reverts all the effects"
//! of Zhang et al.'s drlsg transformer (Section 4.3).

use std::collections::{HashMap, HashSet};
use yali_ir::{BlockId, DomTree, Function, Inst, InstId, Module, Op, Type, Value};

/// Runs mem2reg on every function of the module. Returns the number of
/// allocas promoted.
pub fn run_module(m: &mut Module) -> usize {
    let mut n = 0;
    for f in &mut m.functions {
        if !f.is_declaration() {
            n += run(f);
        }
    }
    n
}

/// Runs mem2reg on one function. Returns the number of allocas promoted.
pub fn run(f: &mut Function) -> usize {
    let candidates = promotable_allocas(f);
    if candidates.is_empty() {
        return 0;
    }
    let dt = DomTree::build(f);
    let preds = f.predecessors();

    // For each alloca: blocks containing stores (definition sites).
    let mut def_blocks: HashMap<InstId, HashSet<BlockId>> = HashMap::new();
    for (b, i) in f.iter_insts() {
        let inst = f.inst(i);
        if inst.op == Op::Store {
            if let Value::Inst(a) = &inst.args[1] {
                if candidates.contains_key(a) {
                    def_blocks.entry(*a).or_default().insert(b);
                }
            }
        }
    }

    // Phi insertion at iterated dominance frontiers.
    // phi_of[(block, alloca)] = phi inst id.
    let mut phi_of: HashMap<(BlockId, InstId), InstId> = HashMap::new();
    for (&alloca, elem_ty) in &candidates {
        let mut work: Vec<BlockId> = def_blocks
            .get(&alloca)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut has_phi: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &df in dt.frontier(b) {
                if has_phi.insert(df) {
                    // Insert an empty phi; incomings filled during renaming.
                    let npreds = preds.get(&df).map(Vec::len).unwrap_or(0);
                    let phi = Inst {
                        op: Op::Phi,
                        ty: elem_ty.clone(),
                        args: vec![Value::Undef(elem_ty.clone()); npreds],
                        blocks: preds.get(&df).cloned().unwrap_or_default(),
                        pred: None,
                        callee: None,
                    };
                    let id = f.new_inst(phi);
                    f.insert_inst(df, 0, id);
                    phi_of.insert((df, alloca), id);
                    work.push(df);
                }
            }
        }
    }

    // Renaming along the dominator tree.
    let mut stacks: HashMap<InstId, Vec<Value>> = candidates
        .keys()
        .map(|&a| (a, Vec::new()))
        .collect();
    // The value of an unitialized slot.
    let undef_of: HashMap<InstId, Value> = candidates
        .iter()
        .map(|(&a, t)| (a, Value::Undef(t.clone())))
        .collect();
    // Records (inst, replacement) for loads, and dead stores/loads/allocas.
    let mut replace: HashMap<InstId, Value> = HashMap::new();
    let mut dead: HashSet<InstId> = HashSet::new();

    // Iterative DFS over the dominator tree, tracking pushes for scoping.
    enum Step {
        Enter(BlockId),
        Exit(Vec<(InstId, usize)>), // (alloca, pushes to pop)
    }
    let entry = f.entry();
    let mut stack = vec![Step::Enter(entry)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Exit(pops) => {
                for (a, n) in pops {
                    let s = stacks.get_mut(&a).unwrap();
                    for _ in 0..n {
                        s.pop();
                    }
                }
            }
            Step::Enter(b) => {
                let mut pushes: HashMap<InstId, usize> = HashMap::new();
                let insts: Vec<InstId> = f.block(b).insts.clone();
                for i in insts {
                    let inst = f.inst(i).clone();
                    match inst.op {
                        Op::Phi => {
                            if let Some((&(_, a), _)) =
                                phi_of.iter().find(|(&(pb, _), &pid)| pb == b && pid == i)
                            {
                                stacks.get_mut(&a).unwrap().push(Value::Inst(i));
                                *pushes.entry(a).or_insert(0) += 1;
                            }
                        }
                        Op::Load => {
                            if let Value::Inst(a) = &inst.args[0] {
                                if let Some(s) = stacks.get(a) {
                                    let cur =
                                        s.last().cloned().unwrap_or_else(|| undef_of[a].clone());
                                    replace.insert(i, cur);
                                    dead.insert(i);
                                }
                            }
                        }
                        Op::Store => {
                            if let Value::Inst(a) = &inst.args[1] {
                                if stacks.contains_key(a) {
                                    // The stored value, as currently renamed.
                                    let v = resolve(&inst.args[0], &replace);
                                    stacks.get_mut(a).unwrap().push(v);
                                    *pushes.entry(*a).or_insert(0) += 1;
                                    dead.insert(i);
                                }
                            }
                        }
                        Op::Alloca
                            if stacks.contains_key(&i) => {
                                dead.insert(i);
                            }
                        _ => {}
                    }
                }
                // Fill phi incomings in CFG successors.
                for s in f.successors(b) {
                    for (&(pb, a), &pid) in &phi_of {
                        if pb != s {
                            continue;
                        }
                        let cur = stacks[&a]
                            .last()
                            .cloned()
                            .unwrap_or_else(|| undef_of[&a].clone());
                        let inst = f.inst_mut(pid);
                        for (k, blk) in inst.blocks.clone().iter().enumerate() {
                            if *blk == b {
                                inst.args[k] = cur.clone();
                            }
                        }
                    }
                }
                stack.push(Step::Exit(pushes.into_iter().collect()));
                for &c in dt.children(b) {
                    stack.push(Step::Enter(c));
                }
            }
        }
    }

    // Apply replacements: rewrite loads' uses, delete dead instructions.
    // Replacements may chain (a load's replacement may itself be a replaced
    // load), so resolve transitively.
    let all_insts: Vec<(BlockId, InstId)> = f.iter_insts().collect();
    for (_, i) in &all_insts {
        let nargs = f.inst(*i).args.len();
        for k in 0..nargs {
            let v = f.inst(*i).args[k].clone();
            let r = resolve(&v, &replace);
            if r != v {
                f.inst_mut(*i).args[k] = r;
            }
        }
    }
    for (b, i) in all_insts {
        if dead.contains(&i) {
            f.remove_from_block(b, i);
        }
    }
    f.compact();
    candidates.len()
}

/// Follows a chain of load-replacements to a final value.
fn resolve(v: &Value, replace: &HashMap<InstId, Value>) -> Value {
    let mut cur = v.clone();
    let mut hops = 0;
    while let Value::Inst(id) = &cur {
        match replace.get(id) {
            Some(next) => {
                cur = next.clone();
                hops += 1;
                assert!(hops < 1_000_000, "replacement cycle");
            }
            None => break,
        }
    }
    cur
}

/// Finds allocas that can be promoted: single-element scalar slots whose
/// only uses are direct loads and stores (never stored *as a value*, never
/// gep'd, never passed to a call).
fn promotable_allocas(f: &Function) -> HashMap<InstId, Type> {
    let mut cand: HashMap<InstId, Type> = HashMap::new();
    for (_, i) in f.iter_insts() {
        let inst = f.inst(i);
        if inst.op == Op::Alloca
            && inst.args[0].is_int(1)
            && matches!(inst.ty.pointee(), Some(t) if !t.is_ptr())
        {
            cand.insert(i, inst.ty.pointee().unwrap().clone());
        }
    }
    if cand.is_empty() {
        return cand;
    }
    for (_, i) in f.iter_insts() {
        let inst = f.inst(i);
        for (k, a) in inst.args.iter().enumerate() {
            let Value::Inst(id) = a else { continue };
            if !cand.contains_key(id) {
                continue;
            }
            let ok = match inst.op {
                Op::Load => k == 0,
                Op::Store => k == 1, // address position only
                _ => false,
            };
            if !ok {
                cand.remove(id);
            }
        }
    }
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::{print_module, verify_module};

    fn compile(src: &str) -> Module {
        yali_minic::compile(src).expect("compile")
    }

    fn promoted(src: &str) -> Module {
        let mut m = compile(src);
        run_module(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        m
    }

    fn count_op(m: &Module, op: Op) -> usize {
        m.definitions()
            .flat_map(|f| f.iter_insts().map(move |(_, i)| f.inst(i).op))
            .filter(|&o| o == op)
            .count()
    }

    #[test]
    fn straight_line_promotion_removes_all_memory_ops() {
        let m = promoted("int f(int x) { int y = x + 1; int z = y * 2; return z; }");
        assert_eq!(count_op(&m, Op::Alloca), 0);
        assert_eq!(count_op(&m, Op::Load), 0);
        assert_eq!(count_op(&m, Op::Store), 0);
    }

    #[test]
    fn loops_get_phis() {
        let src = "int sum(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }";
        let m = promoted(src);
        assert_eq!(count_op(&m, Op::Alloca), 0);
        assert!(count_op(&m, Op::Phi) >= 2, "expected phis for s and i");
        let out = exec(&m, "sum", &[Val::Int(100)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(5050)));
    }

    #[test]
    fn diamond_merges_with_phi() {
        let src = "int f(int x) { int r = 0; if (x > 0) { r = 1; } else { r = 2; } return r; }";
        let m = promoted(src);
        assert_eq!(count_op(&m, Op::Alloca), 0);
        assert!(count_op(&m, Op::Phi) >= 1);
        for (arg, want) in [(5, 1), (-5, 2)] {
            let out = exec(&m, "f", &[Val::Int(arg)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(out.ret, Some(Val::Int(want)));
        }
    }

    #[test]
    fn arrays_are_not_promoted() {
        let src = "int f() { int a[4]; a[0] = 7; return a[0]; }";
        let m = promoted(src);
        assert_eq!(count_op(&m, Op::Alloca), 1);
    }

    #[test]
    fn semantics_preserved_on_nested_control_flow() {
        let src = r#"
            int collatz(int n) {
                int steps = 0;
                while (n != 1) {
                    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                    steps++;
                }
                return steps;
            }
        "#;
        let m0 = compile(src);
        let m1 = promoted(src);
        for n in [1i64, 6, 27, 97] {
            let a = exec(&m0, "collatz", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "collatz", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "collatz({n})");
            assert!(b.steps < a.steps, "promotion should reduce step count");
        }
    }

    #[test]
    fn promotion_reports_count() {
        let mut m = compile("int f(int x) { int y = x; return y; }");
        // x and y slots.
        assert_eq!(run_module(&mut m), 2);
        assert_eq!(run_module(&mut m), 0);
    }

    #[test]
    fn float_slots_promote() {
        let src = "float f(float a, float b) { float m = a; if (b > a) { m = b; } return m; }";
        let m = promoted(src);
        assert_eq!(count_op(&m, Op::Alloca), 0);
        let out = exec(
            &m,
            "f",
            &[Val::Float(1.5), Val::Float(2.5)],
            &[],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Float(2.5)));
    }
}
