//! CFG simplification: branch folding, block merging, forwarder removal,
//! and unreachable-code pruning (the moral equivalent of LLVM's
//! `simplifycfg`).

use std::collections::HashSet;
use yali_ir::{cfg, BlockId, Function, Inst, Module, Op};

/// Runs CFG simplification on every definition until fixpoint. Returns the
/// number of rewrites applied.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .sum()
}

/// Runs CFG simplification on one function until fixpoint.
pub fn run(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut n = 0;
        n += fold_constant_branches(f);
        n += collapse_single_incoming_phis(f);
        if cfg::prune_unreachable(f) {
            n += 1;
        }
        n += merge_straight_line_blocks(f);
        n += remove_forwarders(f);
        if cfg::prune_unreachable(f) {
            n += 1;
        }
        total += n;
        if n == 0 {
            break;
        }
    }
    if total > 0 {
        f.compact();
    }
    total
}

/// `condbr` on a constant, or with identical targets, becomes `br`;
/// `switch` on a constant jumps straight to the matching case.
fn fold_constant_branches(f: &mut Function) -> usize {
    let mut n = 0;
    for &b in &f.block_order().to_vec() {
        let Some(t) = f.terminator(b) else { continue };
        let inst = f.inst(t).clone();
        match inst.op {
            Op::CondBr => {
                let target = match inst.args[0].as_const_int() {
                    Some(c) => Some(if c != 0 { inst.blocks[0] } else { inst.blocks[1] }),
                    None if inst.blocks[0] == inst.blocks[1] => Some(inst.blocks[0]),
                    None => None,
                };
                if let Some(target) = target {
                    let dropped = if target == inst.blocks[0] {
                        inst.blocks[1]
                    } else {
                        inst.blocks[0]
                    };
                    let mut br = Inst::new(Op::Br, yali_ir::Type::Void, vec![]);
                    br.blocks = vec![target];
                    *f.inst_mut(t) = br;
                    // The dropped edge disappears; fix phis if this was
                    // their only edge from b.
                    if dropped != target {
                        remove_phi_incoming(f, dropped, b);
                    }
                    n += 1;
                }
            }
            Op::Switch => {
                if let Some(c) = inst.args[0].as_const_int() {
                    let mut target = inst.blocks[0];
                    for (v, &blk) in inst.args[1..].iter().zip(&inst.blocks[1..]) {
                        if v.as_const_int() == Some(c) {
                            target = blk;
                            break;
                        }
                    }
                    let mut br = Inst::new(Op::Br, yali_ir::Type::Void, vec![]);
                    br.blocks = vec![target];
                    *f.inst_mut(t) = br;
                    for &blk in inst.blocks.iter().filter(|&&x| x != target) {
                        remove_phi_incoming(f, blk, b);
                    }
                    n += 1;
                }
            }
            _ => {}
        }
    }
    n
}

/// Drops the incoming entry for `pred` from every phi at the head of `b`.
fn remove_phi_incoming(f: &mut Function, b: BlockId, pred: BlockId) {
    for id in f.phis(b) {
        let inst = f.inst_mut(id);
        if let Some(k) = inst.blocks.iter().position(|&x| x == pred) {
            inst.blocks.remove(k);
            inst.args.remove(k);
        }
    }
}

/// A phi with exactly one incoming value is that value.
fn collapse_single_incoming_phis(f: &mut Function) -> usize {
    let mut n = 0;
    for &b in &f.block_order().to_vec() {
        for id in f.phis(b) {
            let inst = f.inst(id);
            if inst.args.len() == 1 {
                let v = inst.args[0].clone();
                // A phi can reference itself in unreachable loops; guard.
                if v.as_inst() == Some(id) {
                    continue;
                }
                f.replace_all_uses(id, &v);
                f.remove_from_block(b, id);
                n += 1;
            }
        }
    }
    n
}

/// Merges `b -> s` when `b` ends in an unconditional branch to `s` and `s`
/// has no other predecessors.
fn merge_straight_line_blocks(f: &mut Function) -> usize {
    let mut n = 0;
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for &b in &f.block_order().to_vec() {
            let Some(t) = f.terminator(b) else { continue };
            if f.inst(t).op != Op::Br {
                continue;
            }
            let s = f.inst(t).blocks[0];
            if s == b || preds.get(&s).map(Vec::len) != Some(1) {
                continue;
            }
            // Phis in s have a single incoming (from b): collapse them.
            for id in f.phis(s) {
                let v = f.inst(id).args[0].clone();
                f.replace_all_uses(id, &v);
                f.remove_from_block(s, id);
            }
            // Move s's instructions into b, dropping b's br.
            f.remove_from_block(b, t);
            let moved: Vec<_> = f.block(s).insts.clone();
            f.block_mut(s).insts.clear();
            f.block_mut(b).insts.extend(moved);
            // Phis in s's successors that referenced s now come from b.
            for succ in f.successors(b) {
                f.retarget_phis(succ, s, b);
            }
            // Drop s from the layout.
            let order: Vec<BlockId> = f
                .block_order()
                .iter()
                .copied()
                .filter(|&x| x != s)
                .collect();
            f.set_block_order(order);
            n += 1;
            merged = true;
            break; // predecessor map is stale; recompute
        }
        if !merged {
            break;
        }
    }
    if n > 0 {
        f.compact();
    }
    n
}

/// Removes blocks that contain only `br target` by retargeting their
/// predecessors, when doing so cannot corrupt phis.
fn remove_forwarders(f: &mut Function) -> usize {
    let mut n = 0;
    loop {
        let preds = f.predecessors();
        let mut changed = false;
        for &b in &f.block_order().to_vec() {
            if b == f.entry() {
                continue;
            }
            let insts = &f.block(b).insts;
            if insts.len() != 1 {
                continue;
            }
            let t = insts[0];
            if f.inst(t).op != Op::Br {
                continue;
            }
            let target = f.inst(t).blocks[0];
            if target == b {
                continue;
            }
            let bps: Vec<BlockId> = preds.get(&b).cloned().unwrap_or_default();
            if bps.is_empty() {
                continue; // unreachable; pruning handles it
            }
            // Safety: for each pred p, the target's phis must not already
            // have an incoming for p (that would create a conflict), and p
            // must not already branch to target (a condbr with both edges
            // landing there would need phi semantics we cannot express).
            let target_phi_preds: HashSet<BlockId> = f
                .phis(target)
                .iter()
                .flat_map(|&id| f.inst(id).blocks.clone())
                .collect();
            let has_phis = !f.phis(target).is_empty();
            let ok = bps.iter().all(|p| {
                !target_phi_preds.contains(p)
                    && (!has_phis || !f.successors(*p).contains(&target))
            });
            if !ok {
                continue;
            }
            // Retarget each predecessor's terminator from b to target.
            for &p in &bps {
                if let Some(pt) = f.terminator(p) {
                    for blk in &mut f.inst_mut(pt).blocks {
                        if *blk == b {
                            *blk = target;
                        }
                    }
                }
            }
            // Phis in target that listed b now receive from the preds.
            let mut phi_updates: Vec<(yali_ir::InstId, usize)> = Vec::new();
            for id in f.phis(target) {
                if let Some(k) = f.inst(id).blocks.iter().position(|&x| x == b) {
                    phi_updates.push((id, k));
                }
            }
            for (id, k) in phi_updates {
                let v = f.inst(id).args[k].clone();
                let inst = f.inst_mut(id);
                inst.blocks.remove(k);
                inst.args.remove(k);
                for &p in &bps {
                    let inst = f.inst_mut(id);
                    inst.blocks.push(p);
                    inst.args.push(v.clone());
                }
            }
            // b is now unreachable.
            changed = true;
            n += 1;
            break;
        }
        if !changed {
            break;
        }
        cfg::prune_unreachable(f);
    }
    n
}

/// Replaces `select`-like diamonds? Not yet — kept minimal; `instcombine`
/// owns value-level rewrites.
#[allow(dead_code)]
fn _placeholder() {}

/// Recomputes whether two functions have equal observable structure — used
/// by tests.
#[cfg(test)]
fn block_count(m: &Module, f: &str) -> usize {
    m.function(f).unwrap().num_blocks()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn compile(src: &str) -> Module {
        yali_minic::compile(src).expect("compile")
    }

    fn opt(src: &str) -> Module {
        let mut m = compile(src);
        crate::mem2reg::run_module(&mut m);
        crate::combine::run_module(&mut m); // fold constant conditions first
        run_module(&mut m);
        crate::dce::run_module(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        m
    }

    #[test]
    fn merges_linear_chains() {
        // An if with constant condition leaves a linear chain once folded.
        let m = opt("int f(int x) { int r = 0; if (1 < 2) { r = x; } return r; }");
        assert_eq!(block_count(&m, "f"), 1);
    }

    #[test]
    fn folds_constant_condbr() {
        let mut m = compile("int f(int x) { if (x > 0) { return 1; } return 0; }");
        crate::mem2reg::run_module(&mut m);
        // Replace the condition with a constant true.
        {
            let f = m.function_mut("f").unwrap();
            let t = f.terminator(f.entry()).unwrap();
            assert_eq!(f.inst(t).op, Op::CondBr);
            f.inst_mut(t).args[0] = yali_ir::Value::const_bool(true);
        }
        run_module(&mut m);
        verify_module(&m).unwrap();
        let out = exec(&m, "f", &[Val::Int(-9)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(1)));
        assert_eq!(block_count(&m, "f"), 1);
    }

    #[test]
    fn semantics_preserved_on_loops() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 3 == 0) { s += i; } } return s; }";
        let m0 = compile(src);
        let m1 = opt(src);
        for n in [0i64, 1, 10, 31] {
            let a = exec(&m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "f({n})");
        }
        assert!(block_count(&m1, "f") <= block_count(&m0, "f"));
    }

    #[test]
    fn switch_on_constant_folds() {
        let src = "int f() { int x = 2; int r = 0; switch (x) { case 1: r = 10; break; case 2: r = 20; break; default: r = 30; } return r; }";
        let m = opt(src);
        let out = exec(&m, "f", &[], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(20)));
        // After folding and merging the function is tiny.
        assert!(block_count(&m, "f") <= 2, "got {}", block_count(&m, "f"));
    }

    #[test]
    fn forwarder_blocks_disappear() {
        // break generates a forwarding branch to the exit block.
        let src = "int f(int n) { while (1) { if (n > 10) { break; } n++; } return n; }";
        let m = opt(src);
        let out = exec(&m, "f", &[Val::Int(0)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(11)));
    }

    #[test]
    fn empty_else_join_blocks_collapse() {
        let src = "int f(int a, int b) { int m = a; if (b > a) { m = b; } return m; }";
        let m = opt(src);
        for (a, b, want) in [(1, 2, 2), (5, 3, 5)] {
            let out = exec(
                &m,
                "f",
                &[Val::Int(a), Val::Int(b)],
                &[],
                &ExecConfig::default(),
            )
            .unwrap();
            assert_eq!(out.ret, Some(Val::Int(want)));
        }
    }
}
