//! Global value numbering: dominator-scoped common-subexpression
//! elimination over pure instructions.
//!
//! Walks the dominator tree keeping a scoped table of expression keys; a
//! pure instruction whose key was already computed in a dominating position
//! is replaced by the earlier value. Memory operations, calls, phis, and
//! terminators are never numbered.

use std::collections::HashMap;
use yali_ir::{DomTree, Function, Module, Op, Value};

/// Runs GVN on every definition. Returns the number of replaced
/// instructions.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .sum()
}

/// A hashable expression key. Values are rendered into a stable string
/// form — simple, collision-free, and fast enough at our scales.
fn key_of(f: &Function, i: yali_ir::InstId) -> Option<String> {
    let inst = f.inst(i);
    let pure = inst.op.is_int_binop()
        || inst.op.is_float_binop()
        || inst.op.is_cast()
        || matches!(inst.op, Op::ICmp | Op::FCmp | Op::Select | Op::Gep | Op::FNeg);
    if !pure {
        return None;
    }
    let mut args: Vec<String> = inst.args.iter().map(val_key).collect();
    if inst.op.is_commutative() {
        args.sort();
    }
    Some(format!(
        "{}:{}:{:?}:{}",
        inst.op,
        inst.ty,
        inst.pred,
        args.join(",")
    ))
}

fn val_key(v: &Value) -> String {
    match v {
        Value::Inst(id) => format!("i{}", id.0),
        Value::Param(p) => format!("p{p}"),
        Value::ConstInt(t, c) => format!("c{t}:{c}"),
        Value::ConstFloat(c) => format!("f{:x}", c.to_bits()),
        Value::Undef(t) => format!("u{t}"),
    }
}

/// Runs GVN on one function.
pub fn run(f: &mut Function) -> usize {
    if f.is_declaration() {
        return 0;
    }
    let dt = DomTree::build(f);
    let mut table: HashMap<String, Value> = HashMap::new();
    let mut scopes: Vec<Vec<String>> = Vec::new();
    let mut replaced = 0;

    enum Step {
        Enter(yali_ir::BlockId),
        Exit,
    }
    let mut stack = vec![Step::Enter(f.entry())];
    while let Some(step) = stack.pop() {
        match step {
            Step::Exit => {
                for k in scopes.pop().unwrap_or_default() {
                    table.remove(&k);
                }
            }
            Step::Enter(b) => {
                let mut inserted = Vec::new();
                let insts: Vec<yali_ir::InstId> = f.block(b).insts.clone();
                for i in insts {
                    let Some(key) = key_of(f, i) else { continue };
                    match table.get(&key) {
                        Some(v) => {
                            let v = v.clone();
                            f.replace_all_uses(i, &v);
                            f.remove_from_block(b, i);
                            replaced += 1;
                        }
                        None => {
                            table.insert(key.clone(), Value::Inst(i));
                            inserted.push(key);
                        }
                    }
                }
                scopes.push(inserted);
                stack.push(Step::Exit);
                for &c in dt.children(b) {
                    stack.push(Step::Enter(c));
                }
            }
        }
    }
    if replaced > 0 {
        f.compact();
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn opt(src: &str) -> Module {
        let mut m = yali_minic::compile(src).expect("compile");
        crate::mem2reg::run_module(&mut m);
        crate::combine::run_module(&mut m);
        run_module(&mut m);
        crate::dce::run_module(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        m
    }

    #[test]
    fn eliminates_repeated_subexpressions() {
        let m = opt("int f(int a, int b) { return (a * b + 3) + (a * b + 3); }");
        let f = m.function("f").unwrap();
        let muls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Mul)
            .count();
        assert_eq!(muls, 1, "{}", yali_ir::print_function(f));
        let out = exec(
            &m,
            "f",
            &[Val::Int(3), Val::Int(4)],
            &[],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(30)));
    }

    #[test]
    fn commutative_operands_share_a_number() {
        let m = opt("int f(int a, int b) { return a * b + b * a; }");
        let f = m.function("f").unwrap();
        let muls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Mul)
            .count();
        assert_eq!(muls, 1, "{}", yali_ir::print_function(f));
    }

    #[test]
    fn does_not_merge_across_sibling_branches() {
        let src = "int f(int a, int c) { int r = 0; if (c > 0) { r = a * a; } else { r = a * a; } return r; }";
        let m = opt(src);
        // The two multiplies live in sibling blocks; neither dominates the
        // other, so both survive.
        let f = m.function("f").unwrap();
        let muls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Mul)
            .count();
        assert_eq!(muls, 2);
        let out = exec(
            &m,
            "f",
            &[Val::Int(6), Val::Int(1)],
            &[],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(36)));
    }

    #[test]
    fn calls_are_never_numbered() {
        let m = opt("void f() { print_int(read_int()); print_int(read_int()); }");
        let f = m.function("f").unwrap();
        let calls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Call)
            .count();
        assert_eq!(calls, 4);
    }

    #[test]
    fn dominating_expression_reused_in_branch() {
        let src = "int f(int a, int c) { int x = a * 7; int r = x; if (c > 0) { r = a * 7 + 1; } return r; }";
        let m = opt(src);
        let f = m.function("f").unwrap();
        let muls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Mul)
            .count();
        assert_eq!(muls, 1, "{}", yali_ir::print_function(f));
    }
}
