//! # yali-opt
//!
//! Optimization passes over [`yali_ir`] modules, standing in for clang's
//! optimization levels in the yali reproduction of "A Game-Based Framework
//! to Compare Program Classifiers and Evaders" (CGO 2023).
//!
//! Passes:
//!
//! - [`mem2reg`] — SSA construction (promotes stack slots to registers);
//! - [`combine`] — constant folding, algebraic identities, and the inverse
//!   patterns of O-LLVM's instruction substitution;
//! - [`simplify`] — CFG simplification (branch folding, block merging);
//! - [`dce`] — dead-code elimination;
//! - [`gvn`] — dominator-scoped value numbering;
//! - [`licm`] — loop-invariant code motion;
//! - [`inline`] — function inlining.
//!
//! [`optimize`] wires them into `-O0` … `-O3` pipelines ([`OptLevel`]).
//! In the paper's games, optimization plays two roles: as an *evader*
//! (optimized challenges confuse classifiers trained on `-O0` code, RQ3)
//! and as a *normalizer* (classifiers optimize challenges to undo
//! obfuscation, RQ4).
//!
//! # Example
//!
//! ```
//! use yali_opt::{optimize, OptLevel};
//! use yali_ir::interp::{run, Val, ExecConfig};
//!
//! let mut m = yali_minic::compile(
//!     "int f(int a, int b) { int t = a - (0 - b); return t; }",
//! )?;
//! optimize(&mut m, OptLevel::O1); // undoes the obfuscated subtraction
//! let out = run(&m, "f", &[Val::Int(40), Val::Int(2)], &[], &ExecConfig::default())?;
//! assert_eq!(out.ret, Some(Val::Int(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod combine;
pub mod dce;
pub mod gvn;
pub mod inline;
pub mod licm;
pub mod mem2reg;
pub mod pipeline;
pub mod simplify;

pub use inline::InlineConfig;
pub use pipeline::{mem2reg_only, optimize, optimized, OptLevel};
