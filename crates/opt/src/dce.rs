//! Dead-code elimination.
//!
//! Iteratively removes instructions whose results are unused and that have
//! no side effects. An `alloca` is removable when no load, store, or other
//! user references it (stores *into* a dead alloca die with it).

use std::collections::{HashMap, HashSet};
use yali_ir::{Function, InstId, Module, Op, Value};

/// Runs DCE on every definition. Returns the number of removed instructions.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .sum()
}

/// Runs DCE on one function until no more instructions die.
pub fn run(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let n = one_round(f);
        removed += n;
        if n == 0 {
            break;
        }
    }
    if removed > 0 {
        f.compact();
    }
    removed
}

fn one_round(f: &mut Function) -> usize {
    // Use counts over placed instructions.
    let mut uses: HashMap<InstId, usize> = HashMap::new();
    // Stores keyed by the alloca they write into (for dead-slot elimination).
    let mut store_into: HashMap<InstId, Vec<InstId>> = HashMap::new();
    for (_, i) in f.iter_insts() {
        let inst = f.inst(i);
        for a in &inst.args {
            if let Value::Inst(d) = a {
                *uses.entry(*d).or_insert(0) += 1;
            }
        }
        if inst.op == Op::Store {
            if let Value::Inst(p) = &inst.args[1] {
                store_into.entry(*p).or_default().push(i);
            }
        }
    }
    let mut dead: HashSet<InstId> = HashSet::new();
    for (_, i) in f.iter_insts() {
        let inst = f.inst(i);
        let used = uses.get(&i).copied().unwrap_or(0) > 0;
        if !used && !inst.op.has_side_effects() {
            dead.insert(i);
        }
        // An alloca whose only users are stores feeds nothing: remove the
        // alloca and those stores together.
        if inst.op == Op::Alloca {
            let stores = store_into.get(&i).map(Vec::len).unwrap_or(0);
            if uses.get(&i).copied().unwrap_or(0) == stores {
                dead.insert(i);
                if let Some(ss) = store_into.get(&i) {
                    dead.extend(ss.iter().copied());
                }
            }
        }
    }
    if dead.is_empty() {
        return 0;
    }
    let placed: Vec<_> = f.iter_insts().collect();
    let mut n = 0;
    for (b, i) in placed {
        if dead.contains(&i) {
            f.remove_from_block(b, i);
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::verify_module;

    fn compile(src: &str) -> Module {
        yali_minic::compile(src).expect("compile")
    }

    #[test]
    fn removes_unused_arithmetic() {
        let mut m = compile("int f(int x) { int dead = x * 99 + 7; return x; }");
        crate::mem2reg::run_module(&mut m);
        let before = m.num_insts();
        let removed = run_module(&mut m);
        assert!(removed >= 2, "expected the dead expression to die");
        assert!(m.num_insts() < before);
        verify_module(&m).unwrap();
    }

    #[test]
    fn preserves_calls_and_stores() {
        let mut m = compile("void f() { print_int(1); int a[3]; a[0] = 1; print_int(a[0]); }");
        run_module(&mut m);
        verify_module(&m).unwrap();
        let f = m.function("f").unwrap();
        let calls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Call)
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn dead_slot_and_its_stores_die_together() {
        // Without mem2reg, `unused` is an alloca with only stores.
        let mut m = compile("int f(int x) { int unused = 5; unused = x; return x; }");
        let removed = run_module(&mut m);
        assert!(removed >= 3, "alloca + 2 stores, got {removed}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn fixpoint_chains_of_dead_code() {
        let mut m = compile("int f(int x) { int a = x + 1; int b = a * 2; int c = b - 3; return x; }");
        crate::mem2reg::run_module(&mut m);
        run_module(&mut m);
        let f = m.function("f").unwrap();
        // Only the ret should remain.
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn reports_zero_on_clean_code() {
        let mut m = compile("int f(int x) { return x + 1; }");
        crate::mem2reg::run_module(&mut m);
        run_module(&mut m);
        assert_eq!(run_module(&mut m), 0);
    }
}
