//! Instruction combining: constant folding, algebraic identities, and
//! canonicalization peepholes (LLVM's `instcombine`, miniaturized).
//!
//! Besides classic folds, this pass contains the inverse patterns of
//! O-LLVM's *instruction substitution* obfuscation, which is what lets a
//! `-O1`-style pipeline "partially undo the transformations carried out by
//! the evader" (paper, Example 2.5):
//!
//! - `a - (0 - b)`   → `a + b`
//! - `a + (0 - b)`   → `a - b`
//! - `(a ^ b) + 2*(a & b)` → `a + b` (the classic O-LLVM add substitution)
//! - `~(~a & ~b)`    → `a | b` (De Morgan)
//! - `(a & b) | (a ^ b)` → `a | b`

use std::collections::HashMap;
use yali_ir::{Cmp, Function, InstId, Module, Op, Type, Value};


/// Runs instcombine over every definition to fixpoint. Returns the number of
/// rewrites.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .sum()
}

/// Runs instcombine on one function to fixpoint.
pub fn run(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let n = one_round(f);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

fn one_round(f: &mut Function) -> usize {
    let mut n = 0;
    let placed: Vec<(yali_ir::BlockId, InstId)> = f.iter_insts().collect();
    // def map for looking through operands. The snapshot goes stale as the
    // round removes instructions, so anything built from it is validated
    // against `removed` before being committed — a skipped opportunity is
    // picked up by the next fixpoint round with fresh state.
    let defs: HashMap<InstId, yali_ir::Inst> = placed
        .iter()
        .map(|&(_, i)| (i, f.inst(i).clone()))
        .collect();
    let mut removed: std::collections::HashSet<InstId> = std::collections::HashSet::new();
    let uses_removed = |v: &Value, removed: &std::collections::HashSet<InstId>| match v {
        Value::Inst(id) => removed.contains(id),
        _ => false,
    };
    for (b, i) in placed {
        if removed.contains(&i) {
            continue;
        }
        let inst = f.inst(i).clone();
        if let Some(v) = simplify_inst(&inst, &defs) {
            if uses_removed(&v, &removed) {
                continue;
            }
            // Everything simplify_inst handles is pure, so the original
            // instruction can be dropped on the spot (leaving it would make
            // every later round re-count it and never reach a fixpoint).
            f.replace_all_uses(i, &v);
            f.remove_from_block(b, i);
            removed.insert(i);
            n += 1;
            continue;
        }
        if let Some(new_inst) = rewrite_inst(&inst, &defs) {
            if new_inst.args.iter().any(|a| uses_removed(a, &removed)) {
                continue;
            }
            *f.inst_mut(i) = new_inst;
            n += 1;
        }
    }
    if n > 0 {
        f.compact();
    }
    n
}

fn cint(ty: &Type, v: i64) -> Value {
    Value::const_int(ty.clone(), v)
}

/// Looks through an operand to its defining instruction, if any.
fn def_of<'a>(v: &Value, defs: &'a HashMap<InstId, yali_ir::Inst>) -> Option<&'a yali_ir::Inst> {
    v.as_inst().and_then(|id| defs.get(&id))
}

/// Returns a value the instruction is equivalent to, if one exists.
fn simplify_inst(inst: &yali_ir::Inst, defs: &HashMap<InstId, yali_ir::Inst>) -> Option<Value> {
    let ty = &inst.ty;
    match inst.op {
        op if op.is_int_binop() => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            // Constant folding.
            if let (Some(x), Some(y)) = (a.as_const_int(), b.as_const_int()) {
                return fold_int(op, x, y, ty).map(|v| cint(ty, v));
            }
            match op {
                Op::Add => {
                    if b.is_int(0) {
                        return Some(a.clone());
                    }
                    if a.is_int(0) {
                        return Some(b.clone());
                    }
                    // (a ^ b) + 2*(a & b) == a + b  (O-LLVM add substitution)
                    if let (Some(x), Some(s)) = (def_of(a, defs), def_of(b, defs)) {
                        if x.op == Op::Xor && s.op == Op::Shl && s.args[1].is_int(1) {
                            if let Some(and) = def_of(&s.args[0], defs) {
                                if and.op == Op::And && same_pair(&x.args, &and.args) {
                                    return None; // handled by rewrite_inst (needs new inst)
                                }
                            }
                        }
                    }
                }
                Op::Sub => {
                    if b.is_int(0) {
                        return Some(a.clone());
                    }
                    if a == b {
                        return Some(cint(ty, 0));
                    }
                }
                Op::Mul => {
                    if b.is_int(1) {
                        return Some(a.clone());
                    }
                    if a.is_int(1) {
                        return Some(b.clone());
                    }
                    if a.is_int(0) || b.is_int(0) {
                        return Some(cint(ty, 0));
                    }
                }
                Op::SDiv | Op::UDiv
                    if b.is_int(1) => {
                        return Some(a.clone());
                    }
                Op::SRem | Op::URem
                    if b.is_int(1) => {
                        return Some(cint(ty, 0));
                    }
                Op::And => {
                    if a == b {
                        return Some(a.clone());
                    }
                    if a.is_int(0) || b.is_int(0) {
                        return Some(cint(ty, 0));
                    }
                    if b.is_int(-1) || b.as_const_int() == Some(ty.wrap(-1)) {
                        return Some(a.clone());
                    }
                }
                Op::Or => {
                    if a == b {
                        return Some(a.clone());
                    }
                    if b.is_int(0) {
                        return Some(a.clone());
                    }
                    if a.is_int(0) {
                        return Some(b.clone());
                    }
                }
                Op::Xor => {
                    if a == b {
                        return Some(cint(ty, 0));
                    }
                    if b.is_int(0) {
                        return Some(a.clone());
                    }
                    if a.is_int(0) {
                        return Some(b.clone());
                    }
                    // Double negation: (a ^ -1) ^ -1 == a.
                    if b.as_const_int() == Some(ty.wrap(-1)) {
                        if let Some(inner) = def_of(a, defs) {
                            if inner.op == Op::Xor
                                && inner.args[1].as_const_int() == Some(ty.wrap(-1))
                            {
                                return Some(inner.args[0].clone());
                            }
                        }
                    }
                }
                Op::Shl | Op::LShr | Op::AShr
                    if b.is_int(0) => {
                        return Some(a.clone());
                    }
                _ => {}
            }
            None
        }
        op if op.is_float_binop() => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            if let (Some(x), Some(y)) = (a.as_const_float(), b.as_const_float()) {
                let v = match op {
                    Op::FAdd => x + y,
                    Op::FSub => x - y,
                    Op::FMul => x * y,
                    Op::FDiv => x / y,
                    Op::FRem => x % y,
                    _ => unreachable!(),
                };
                return Some(Value::ConstFloat(v));
            }
            // Float identities are *not* applied blindly (x + 0.0 is not x
            // for -0.0), mirroring LLVM's strict default.
            None
        }
        Op::ICmp => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            let pred = inst.pred?;
            if let (Some(x), Some(y)) = (a.as_const_int(), b.as_const_int()) {
                let r = eval_icmp(pred, x, y);
                return Some(Value::const_bool(r));
            }
            if a == b {
                let r = matches!(pred, Cmp::Eq | Cmp::Sle | Cmp::Sge | Cmp::Ule | Cmp::Uge);
                return Some(Value::const_bool(r));
            }
            None
        }
        Op::Select => {
            let c = &inst.args[0];
            if let Some(v) = c.as_const_int() {
                return Some(if v != 0 {
                    inst.args[1].clone()
                } else {
                    inst.args[2].clone()
                });
            }
            if inst.args[1] == inst.args[2] {
                return Some(inst.args[1].clone());
            }
            None
        }
        Op::ZExt | Op::SExt => {
            let a = &inst.args[0];
            if let Some(v) = a.as_const_int() {
                let from = match a {
                    Value::ConstInt(t, _) => t.clone(),
                    _ => return None,
                };
                let out = if inst.op == Op::ZExt {
                    let bits = from.int_bits()?;
                    if bits == 64 {
                        v
                    } else {
                        (v as u64 & ((1u64 << bits) - 1)) as i64
                    }
                } else {
                    v
                };
                return Some(cint(&inst.ty, out));
            }
            None
        }
        Op::Trunc => {
            let a = &inst.args[0];
            a.as_const_int().map(|v| cint(&inst.ty, v))
        }
        Op::SiToFp => inst.args[0]
            .as_const_int()
            .map(|v| Value::ConstFloat(v as f64)),
        Op::FpToSi => inst.args[0]
            .as_const_float()
            .filter(|f| f.is_finite())
            .map(|f| cint(&inst.ty, f as i64)),
        Op::FNeg => inst.args[0].as_const_float().map(|v| Value::ConstFloat(-v)),
        // Phis are left to simplify-cfg (single-incoming collapse) and GVN;
        // rewriting them here would need the phi's own id for the
        // self-reference check.
        _ => None,
    }
}

fn same_pair(a: &[Value], b: &[Value]) -> bool {
    (a[0] == b[0] && a[1] == b[1]) || (a[0] == b[1] && a[1] == b[0])
}

/// Returns a replacement instruction (same result type) for rewrites that
/// cannot be expressed as a pure value.
fn rewrite_inst(
    inst: &yali_ir::Inst,
    defs: &HashMap<InstId, yali_ir::Inst>,
) -> Option<yali_ir::Inst> {
    let ty = inst.ty.clone();
    match inst.op {
        Op::Sub => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            // a - (0 - b) → a + b  (O-LLVM sub pattern).
            if let Some(neg) = def_of(b, defs) {
                if neg.op == Op::Sub && neg.args[0].is_int(0) {
                    return Some(yali_ir::Inst::new(
                        Op::Add,
                        ty,
                        vec![a.clone(), neg.args[1].clone()],
                    ));
                }
            }
            // (0 - b) canonical stays; constant rhs: a - c → a + (-c).
            if let Some(c) = b.as_const_int() {
                if c != i64::MIN && !b.is_int(0) {
                    return Some(yali_ir::Inst::new(
                        Op::Add,
                        ty.clone(),
                        vec![a.clone(), cint(&ty, -c)],
                    ));
                }
            }
            None
        }
        Op::Add => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            // a + (0 - b) → a - b.
            if let Some(neg) = def_of(b, defs) {
                if neg.op == Op::Sub && neg.args[0].is_int(0) {
                    return Some(yali_ir::Inst::new(
                        Op::Sub,
                        ty,
                        vec![a.clone(), neg.args[1].clone()],
                    ));
                }
            }
            if let Some(neg) = def_of(a, defs) {
                if neg.op == Op::Sub && neg.args[0].is_int(0) {
                    return Some(yali_ir::Inst::new(
                        Op::Sub,
                        ty,
                        vec![b.clone(), neg.args[1].clone()],
                    ));
                }
            }
            // (a ^ b) + ((a & b) << 1) → a + b.
            for (x, y) in [(a, b), (b, a)] {
                if let (Some(xor), Some(shl)) = (def_of(x, defs), def_of(y, defs)) {
                    if xor.op == Op::Xor && shl.op == Op::Shl && shl.args[1].is_int(1) {
                        if let Some(and) = def_of(&shl.args[0], defs) {
                            if and.op == Op::And && same_pair(&xor.args, &and.args) {
                                return Some(yali_ir::Inst::new(
                                    Op::Add,
                                    ty,
                                    vec![xor.args[0].clone(), xor.args[1].clone()],
                                ));
                            }
                        }
                    }
                }
            }
            // Canonicalize constants to the right.
            if a.is_const() && !b.is_const() {
                return Some(yali_ir::Inst::new(Op::Add, ty, vec![b.clone(), a.clone()]));
            }
            None
        }
        Op::Mul => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            if a.is_const() && !b.is_const() {
                return Some(yali_ir::Inst::new(Op::Mul, ty, vec![b.clone(), a.clone()]));
            }
            // Strength reduction: x * 2^k → x << k.
            if let Some(c) = b.as_const_int() {
                if c > 1 && (c & (c - 1)) == 0 {
                    let k = c.trailing_zeros() as i64;
                    return Some(yali_ir::Inst::new(
                        Op::Shl,
                        ty.clone(),
                        vec![a.clone(), cint(&ty, k)],
                    ));
                }
            }
            None
        }
        Op::Or => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            // (a & b) | (a ^ b) → simplifies to a | b.
            for (x, y) in [(a, b), (b, a)] {
                if let (Some(and), Some(xor)) = (def_of(x, defs), def_of(y, defs)) {
                    if and.op == Op::And && xor.op == Op::Xor && same_pair(&and.args, &xor.args) {
                        return Some(yali_ir::Inst::new(
                            Op::Or,
                            ty,
                            vec![and.args[0].clone(), and.args[1].clone()],
                        ));
                    }
                }
            }
            // De Morgan: ~a & ~b form arrives as xor -1; ~( ~a & ~b ) → a|b
            None
        }
        Op::Xor => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            // De Morgan inverse: (~a & ~b) ^ -1 → a | b.
            if b.as_const_int() == Some(ty.wrap(-1)) {
                if let Some(and) = def_of(a, defs) {
                    if and.op == Op::And {
                        let nots: Vec<Option<Value>> = and
                            .args
                            .iter()
                            .map(|v| {
                                def_of(v, defs).and_then(|d| {
                                    (d.op == Op::Xor
                                        && d.args[1].as_const_int() == Some(ty.wrap(-1)))
                                    .then(|| d.args[0].clone())
                                })
                            })
                            .collect();
                        if let (Some(x), Some(y)) = (nots[0].clone(), nots[1].clone()) {
                            return Some(yali_ir::Inst::new(Op::Or, ty, vec![x, y]));
                        }
                    }
                }
            }
            if a.is_const() && !b.is_const() {
                return Some(yali_ir::Inst::new(Op::Xor, ty, vec![b.clone(), a.clone()]));
            }
            None
        }
        Op::And => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            if a.is_const() && !b.is_const() {
                return Some(yali_ir::Inst::new(Op::And, ty, vec![b.clone(), a.clone()]));
            }
            None
        }
        Op::ICmp => {
            let (a, b) = (&inst.args[0], &inst.args[1]);
            // Canonicalize constant to the right by swapping the predicate.
            if a.is_const() && !b.is_const() {
                let mut ni = inst.clone();
                ni.args = vec![b.clone(), a.clone()];
                ni.pred = Some(inst.pred?.swap());
                return Some(ni);
            }
            None
        }
        _ => None,
    }
}

fn fold_int(op: Op, x: i64, y: i64, ty: &Type) -> Option<i64> {
    let v = match op {
        Op::Add => x.wrapping_add(y),
        Op::Sub => x.wrapping_sub(y),
        Op::Mul => x.wrapping_mul(y),
        Op::SDiv => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        Op::SRem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        Op::UDiv => {
            if y == 0 {
                return None;
            }
            ((x as u64) / (y as u64)) as i64
        }
        Op::URem => {
            if y == 0 {
                return None;
            }
            ((x as u64) % (y as u64)) as i64
        }
        Op::And => x & y,
        Op::Or => x | y,
        Op::Xor => x ^ y,
        Op::Shl => {
            let bits = ty.int_bits().unwrap_or(64) as i64;
            x.wrapping_shl((y & (bits - 1)) as u32)
        }
        Op::LShr => {
            let bits = ty.int_bits().unwrap_or(64) as i64;
            ((x as u64) >> ((y & (bits - 1)) as u32)) as i64
        }
        Op::AShr => {
            let bits = ty.int_bits().unwrap_or(64) as i64;
            x >> ((y & (bits - 1)) as u32)
        }
        _ => return None,
    };
    Some(ty.wrap(v))
}

fn eval_icmp(pred: Cmp, x: i64, y: i64) -> bool {
    match pred {
        Cmp::Eq => x == y,
        Cmp::Ne => x != y,
        Cmp::Slt => x < y,
        Cmp::Sle => x <= y,
        Cmp::Sgt => x > y,
        Cmp::Sge => x >= y,
        Cmp::Ult => (x as u64) < (y as u64),
        Cmp::Ule => (x as u64) <= (y as u64),
        Cmp::Ugt => (x as u64) > (y as u64),
        Cmp::Uge => (x as u64) >= (y as u64),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn opt(src: &str) -> Module {
        let mut m = yali_minic::compile(src).expect("compile");
        crate::mem2reg::run_module(&mut m);
        run_module(&mut m);
        crate::dce::run_module(&mut m);
        crate::simplify::run_module(&mut m);
        crate::dce::run_module(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        m
    }

    fn ret_of(m: &Module, f: &str, args: &[Val]) -> Val {
        exec(m, f, args, &[], &ExecConfig::default())
            .unwrap()
            .ret
            .unwrap()
    }

    #[test]
    fn folds_constant_expressions_to_nothing() {
        let m = opt("int f() { return (3 + 4) * (10 - 8); }");
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 1, "{}", yali_ir::print_function(f));
        assert_eq!(ret_of(&m, "f", &[]), Val::Int(14));
    }

    #[test]
    fn algebraic_identities() {
        let m = opt("int f(int x) { return (x + 0) * 1 + (x - x) + (x ^ x); }");
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 1, "{}", yali_ir::print_function(f));
        assert_eq!(ret_of(&m, "f", &[Val::Int(9)]), Val::Int(9));
    }

    #[test]
    fn reverses_ollvm_sub_pattern() {
        // a - (0 - b) is the O-LLVM substitution for a + b.
        let m = opt("int f(int a, int b) { return a - (0 - b); }");
        let f = m.function("f").unwrap();
        let has_add = f.iter_insts().any(|(_, i)| f.inst(i).op == Op::Add);
        let subs = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Sub)
            .count();
        assert!(has_add && subs == 0, "{}", yali_ir::print_function(f));
        assert_eq!(
            ret_of(&m, "f", &[Val::Int(30), Val::Int(12)]),
            Val::Int(42)
        );
    }

    #[test]
    fn reverses_xor_and_shl_add_pattern() {
        let m = opt("int f(int a, int b) { return (a ^ b) + ((a & b) * 2); }");
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 2, "{}", yali_ir::print_function(f)); // add + ret
        assert_eq!(ret_of(&m, "f", &[Val::Int(30), Val::Int(12)]), Val::Int(42));
    }

    #[test]
    fn strength_reduces_power_of_two_multiply() {
        let m = opt("int f(int x) { return x * 8; }");
        let f = m.function("f").unwrap();
        assert!(f.iter_insts().any(|(_, i)| f.inst(i).op == Op::Shl));
        assert_eq!(ret_of(&m, "f", &[Val::Int(5)]), Val::Int(40));
    }

    #[test]
    fn icmp_on_equal_operands_folds() {
        let m = opt("int f(int x) { if (x == x) { return 1; } return 0; }");
        assert_eq!(ret_of(&m, "f", &[Val::Int(7)]), Val::Int(1));
        let f = m.function("f").unwrap();
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let m = opt("int f() { return 1 / 0; }");
        let f = m.function("f").unwrap();
        assert!(f.iter_insts().any(|(_, i)| f.inst(i).op == Op::SDiv));
    }

    #[test]
    fn float_constants_fold() {
        let m = opt("float f() { return 1.5 * 4.0; }");
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 1);
        assert_eq!(ret_of(&m, "f", &[]), Val::Float(6.0));
    }

    #[test]
    fn double_bitwise_not_cancels() {
        let m = opt("int f(int x) { return ~(~x); }");
        let f = m.function("f").unwrap();
        assert_eq!(f.num_insts(), 1);
        assert_eq!(ret_of(&m, "f", &[Val::Int(-3)]), Val::Int(-3));
    }

    #[test]
    fn de_morgan_reverses() {
        let m = opt("int f(int a, int b) { return ~(~a & ~b); }");
        let f = m.function("f").unwrap();
        assert!(
            f.iter_insts().any(|(_, i)| f.inst(i).op == Op::Or),
            "{}",
            yali_ir::print_function(f)
        );
        assert_eq!(ret_of(&m, "f", &[Val::Int(12), Val::Int(10)]), Val::Int(14));
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn semantics_hold_on_random_arithmetic() {
        let src = "int f(int a, int b) { return (a * 4 + b * 2 - a) % 97 + (a & b | 5) - (a ^ 3); }";
        let m0 = yali_minic::compile(src).unwrap();
        let m1 = opt(src);
        for (a, b) in [(0i64, 0i64), (13, -7), (1 << 40, 3), (-99, 99)] {
            let args = [Val::Int(a), Val::Int(b)];
            assert_eq!(
                ret_of(&m0, "f", &args),
                ret_of(&m1, "f", &args),
                "mismatch at ({a},{b})"
            );
        }
    }
}
