//! Function inlining.
//!
//! Call sites whose callees are small, non-recursive definitions are
//! replaced by a clone of the callee body. Inlining is the `-O2`/`-O3`
//! ingredient that most reshapes opcode histograms (calls disappear, caller
//! mixes absorb callee mixes), which matters for the paper's observation
//! that optimization is itself an effective evasion strategy (RQ3).

use std::collections::HashMap;
use yali_ir::{BlockId, Function, Inst, InstId, Module, Op, Type, Value};

/// Inlining configuration.
#[derive(Debug, Clone)]
pub struct InlineConfig {
    /// Callees with at most this many instructions are inlined.
    pub callee_threshold: usize,
    /// Stop growing a caller beyond this many instructions.
    pub caller_budget: usize,
    /// Rounds of inlining (later rounds inline through freshly exposed
    /// call sites).
    pub rounds: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            callee_threshold: 80,
            caller_budget: 4000,
            rounds: 2,
        }
    }
}

/// Runs the inliner over the module. Returns the number of call sites
/// inlined.
pub fn run_module(m: &mut Module, config: &InlineConfig) -> usize {
    let mut total = 0;
    for _ in 0..config.rounds {
        let n = one_round(m, config);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

fn is_directly_recursive(f: &Function) -> bool {
    f.iter_insts()
        .any(|(_, i)| f.inst(i).callee.as_deref() == Some(f.name.as_str()))
}

fn one_round(m: &mut Module, config: &InlineConfig) -> usize {
    // Decide inlinable callees up front (immutable snapshot).
    let inlinable: HashMap<String, Function> = m
        .functions
        .iter()
        .filter(|f| {
            !f.is_declaration()
                && f.num_insts() <= config.callee_threshold
                && !is_directly_recursive(f)
        })
        .map(|f| (f.name.clone(), f.clone()))
        .collect();
    let mut n = 0;
    for f in &mut m.functions {
        if f.is_declaration() {
            continue;
        }
        loop {
            if f.num_insts() > config.caller_budget {
                break;
            }
            let Some((b, i)) = find_call_site(f, &inlinable) else {
                break;
            };
            inline_site(f, b, i, &inlinable);
            n += 1;
        }
    }
    n
}

fn find_call_site(f: &Function, inlinable: &HashMap<String, Function>) -> Option<(BlockId, InstId)> {
    for (b, i) in f.iter_insts() {
        let inst = f.inst(i);
        if inst.op == Op::Call {
            if let Some(callee) = inst.callee.as_deref() {
                if callee != f.name && inlinable.contains_key(callee) {
                    return Some((b, i));
                }
            }
        }
    }
    None
}

fn remap_value(v: &Value, inst_map: &HashMap<InstId, InstId>, args: &[Value]) -> Value {
    match v {
        Value::Inst(id) => Value::Inst(
            *inst_map
                .get(id)
                .unwrap_or_else(|| panic!("inline: unmapped instruction {id}")),
        ),
        Value::Param(p) => args[*p as usize].clone(),
        other => other.clone(),
    }
}

fn inline_site(
    f: &mut Function,
    site_block: BlockId,
    site_inst: InstId,
    inlinable: &HashMap<String, Function>,
) {
    let call = f.inst(site_inst).clone();
    let callee = &inlinable[call.callee.as_deref().unwrap()];
    let call_args = call.args.clone();

    // Split the site block: everything after the call moves to `cont`.
    let pos = f
        .block(site_block)
        .insts
        .iter()
        .position(|&x| x == site_inst)
        .expect("call not in its block");
    let tail: Vec<InstId> = f.block(site_block).insts[pos + 1..].to_vec();
    f.block_mut(site_block).insts.truncate(pos); // drops the call too
    let cont = f.add_block();
    f.block_mut(cont).insts = tail;
    // Successor phis that named the site block now come from cont.
    for s in f.successors(cont) {
        f.retarget_phis(s, site_block, cont);
    }

    // Clone callee blocks.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for &cb in callee.block_order() {
        block_map.insert(cb, f.add_block());
    }
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    // First create placeholder instructions to obtain ids (two-phase so
    // forward references in phis resolve).
    for &cb in callee.block_order() {
        for &ci in &callee.block(cb).insts {
            let id = f.new_inst(Inst::new(Op::Unreachable, Type::Void, vec![]));
            inst_map.insert(ci, id);
            let nb = block_map[&cb];
            f.block_mut(nb).insts.push(id);
        }
    }
    // Collect returns for the continuation phi.
    let mut ret_edges: Vec<(Value, BlockId)> = Vec::new();
    for &cb in callee.block_order() {
        for &ci in &callee.block(cb).insts {
            let orig = callee.inst(ci);
            let new_id = inst_map[&ci];
            if orig.op == Op::Ret {
                if let Some(rv) = orig.args.first() {
                    ret_edges.push((
                        remap_value(rv, &inst_map, &call_args),
                        block_map[&cb],
                    ));
                } else {
                    ret_edges.push((Value::Undef(Type::Void), block_map[&cb]));
                }
                let mut br = Inst::new(Op::Br, Type::Void, vec![]);
                br.blocks = vec![cont];
                *f.inst_mut(new_id) = br;
            } else {
                let mut ni = orig.clone();
                ni.args = ni
                    .args
                    .iter()
                    .map(|a| remap_value(a, &inst_map, &call_args))
                    .collect();
                ni.blocks = ni.blocks.iter().map(|b| block_map[b]).collect();
                *f.inst_mut(new_id) = ni;
            }
        }
    }

    // Branch from the site block into the callee entry.
    let entry_clone = block_map[&callee.entry()];
    let mut br = Inst::new(Op::Br, Type::Void, vec![]);
    br.blocks = vec![entry_clone];
    f.push_inst(site_block, br);

    // The call's result: a phi over return values at the continuation head.
    if !call.ty.is_void() {
        let (args, blocks): (Vec<Value>, Vec<BlockId>) = ret_edges.into_iter().unzip();
        let replacement = if args.len() == 1 {
            args[0].clone()
        } else {
            let phi = Inst {
                op: Op::Phi,
                ty: call.ty.clone(),
                args,
                blocks,
                pred: None,
                callee: None,
            };
            let id = f.new_inst(phi);
            f.insert_inst(cont, 0, id);
            Value::Inst(id)
        };
        f.replace_all_uses(site_inst, &replacement);
    }
    f.compact();
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn compile(src: &str) -> Module {
        yali_minic::compile(src).expect("compile")
    }

    fn inlined(src: &str) -> Module {
        let mut m = compile(src);
        run_module(&mut m, &InlineConfig::default());
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        m
    }

    fn count_calls(m: &Module, f: &str) -> usize {
        let f = m.function(f).unwrap();
        f.iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Call)
            .count()
    }

    #[test]
    fn inlines_small_helpers() {
        let src = r#"
            int sq(int x) { return x * x; }
            int f(int a) { return sq(a) + sq(a + 1); }
        "#;
        let m = inlined(src);
        assert_eq!(count_calls(&m, "f"), 0);
        let out = exec(&m, "f", &[Val::Int(3)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(25)));
    }

    #[test]
    fn multi_return_callee_gets_phi() {
        let src = r#"
            int pick(int x) { if (x > 0) { return 1; } return 2; }
            int f(int a) { return pick(a) * 10; }
        "#;
        let m = inlined(src);
        assert_eq!(count_calls(&m, "f"), 0);
        for (a, want) in [(5, 10), (-5, 20)] {
            let out = exec(&m, "f", &[Val::Int(a)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(out.ret, Some(Val::Int(want)));
        }
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let src = r#"
            int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            int f() { return fact(5); }
        "#;
        let m = inlined(src);
        // fact is recursive; the call from f may be inlined? No: fact is
        // directly recursive, so it is not inlinable at all.
        assert_eq!(count_calls(&m, "f"), 1);
        let out = exec(&m, "f", &[], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(120)));
    }

    #[test]
    fn void_callees_inline() {
        let src = r#"
            void shout(int x) { print_int(x * 2); }
            void f() { shout(1); shout(2); }
        "#;
        let m = inlined(src);
        let f = m.function("f").unwrap();
        let user_calls = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).callee.as_deref() == Some("shout"))
            .count();
        assert_eq!(user_calls, 0);
        let out = exec(&m, "f", &[], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec![Val::Int(2), Val::Int(4)]);
    }

    #[test]
    fn two_rounds_reach_through_wrappers() {
        let src = r#"
            int base(int x) { return x + 1; }
            int wrap(int x) { return base(x) * 2; }
            int f(int a) { return wrap(a); }
        "#;
        let m = inlined(src);
        assert_eq!(count_calls(&m, "f"), 0);
        let out = exec(&m, "f", &[Val::Int(4)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(10)));
    }

    #[test]
    fn inlining_preserves_loop_semantics() {
        let src = r#"
            int step(int x) { return x * 3 + 1; }
            int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += step(i); } return s; }
        "#;
        let m0 = compile(src);
        let m1 = inlined(src);
        for n in [0i64, 1, 7] {
            let a = exec(&m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret);
        }
        assert_eq!(count_calls(&m1, "f"), 0);
    }

    #[test]
    fn caller_with_phis_after_call_survives_split() {
        // The statement after the call produces control flow whose phis
        // reference the split block.
        let src = r#"
            int h(int x) { return x + 10; }
            int f(int a) { int r = h(a); if (r > 15) { r = r - 1; } return r; }
        "#;
        let mut m = compile(src);
        crate::mem2reg::run_module(&mut m);
        run_module(&mut m, &InlineConfig::default());
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        for (a, want) in [(10, 19), (2, 12)] {
            let out = exec(&m, "f", &[Val::Int(a)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(out.ret, Some(Val::Int(want)));
        }
    }
}
