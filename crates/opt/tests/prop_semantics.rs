//! Property tests: every optimization level preserves the behaviour of
//! randomly generated MiniC programs.

use proptest::prelude::*;
use yali_ir::interp::{run, ExecConfig, Val};

/// Random arithmetic expression over `x` and `y` (ints).
fn expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            Just("x".to_string()),
            Just("y".to_string()),
            (-50i64..50).prop_map(|c| format!("({c})")),
        ]
        .boxed()
    } else {
        let sub = expr(depth - 1);
        (sub.clone(), prop_oneof![Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^")], sub)
            .prop_map(|(a, o, b)| format!("({a} {o} {b})"))
            .boxed()
    }
}

fn program(e1: String, e2: String, bound: u8) -> String {
    format!(
        "int f(int x, int y) {{ int acc = 0; for (int i = 0; i < {bound}; i++) {{ if ({e1} > acc) {{ acc = acc + i; }} else {{ acc = acc - 1; }} }} return acc + {e2}; }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimization_levels_agree(
        e1 in expr(2),
        e2 in expr(2),
        bound in 1u8..12,
        x in -100i64..100,
        y in -100i64..100,
    ) {
        let src = program(e1, e2, bound);
        let m0 = yali_minic::compile(&src).expect("compiles");
        let args = [Val::Int(x), Val::Int(y)];
        let reference = run(&m0, "f", &args, &[], &ExecConfig::default()).expect("runs").ret;
        for level in yali_opt::OptLevel::ALL {
            let m = yali_opt::optimized(&m0, level);
            yali_ir::verify_module(&m).expect("verifies");
            let got = run(&m, "f", &args, &[], &ExecConfig::default()).expect("runs").ret;
            prop_assert_eq!(got, reference, "level {} diverged on {}", level, src);
        }
    }

    #[test]
    fn o3_never_grows_execution_cost(
        e1 in expr(2),
        bound in 2u8..12,
        x in -50i64..50,
    ) {
        let src = program(e1, "y".to_string(), bound);
        let m0 = yali_minic::compile(&src).expect("compiles");
        let args = [Val::Int(x), Val::Int(1)];
        let base = run(&m0, "f", &args, &[], &ExecConfig::default()).expect("runs");
        let m3 = yali_opt::optimized(&m0, yali_opt::OptLevel::O3);
        let fast = run(&m3, "f", &args, &[], &ExecConfig::default()).expect("runs");
        prop_assert!(fast.cost <= base.cost, "O3 {} > O0 {} for {}", fast.cost, base.cost, src);
    }
}
