//! Problems 52–77: dynamic programming and matrix tasks.

use crate::spec::{InputSpec, ProblemSpec};

/// The DP and matrix problem specifications.
pub fn specs() -> Vec<ProblemSpec> {
    vec![
        ProblemSpec {
            name: "climb_stairs",
            variants: &[
                "void main() { int n = read_int(); int a = 1; int b = 1; for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; } print_int(a); }",
                "void main() { int n = read_int(); int dp[60]; dp[0] = 1; dp[1] = 1; for (int i = 2; i <= n; i++) { dp[i] = dp[i - 1] + dp[i - 2]; } print_int(dp[n]); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 40 },
        },
        ProblemSpec {
            name: "coin_change_ways",
            variants: &[
                "void main() { int amount = read_int(); int coins[3]; coins[0] = 1; coins[1] = 3; coins[2] = 5; int dp[200]; for (int i = 0; i <= amount; i++) { dp[i] = 0; } dp[0] = 1; for (int c = 0; c < 3; c++) { for (int v = coins[c]; v <= amount; v++) { dp[v] += dp[v - coins[c]]; } } print_int(dp[amount]); }",
                "int ways(int amount, int maxc) { if (amount == 0) { return 1; } if (amount < 0 || maxc == 0) { return 0; } int c = 1; if (maxc == 2) { c = 3; } if (maxc == 3) { c = 5; } return ways(amount - c, maxc) + ways(amount, maxc - 1); } void main() { print_int(ways(read_int(), 3)); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 60 },
        },
        ProblemSpec {
            name: "min_coins",
            variants: &[
                "void main() { int amount = read_int(); int dp[200]; dp[0] = 0; for (int v = 1; v <= amount; v++) { dp[v] = 1000000; if (v >= 1 && dp[v - 1] + 1 < dp[v]) { dp[v] = dp[v - 1] + 1; } if (v >= 4 && dp[v - 4] + 1 < dp[v]) { dp[v] = dp[v - 4] + 1; } if (v >= 7 && dp[v - 7] + 1 < dp[v]) { dp[v] = dp[v - 7] + 1; } } print_int(dp[amount]); }",
                "void main() { int amount = read_int(); int dp[200]; dp[0] = 0; int v = 1; while (v <= amount) { int best = dp[v - 1] + 1; if (v >= 4) { int c = dp[v - 4] + 1; if (c < best) { best = c; } } if (v >= 7) { int c = dp[v - 7] + 1; if (c < best) { best = c; } } dp[v] = best; v++; } print_int(dp[amount]); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 150 },
        },
        ProblemSpec {
            name: "lcs_length",
            variants: &[
                "void main() { int n = read_int(); int a[20]; int b[20]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { b[i] = read_int(); } int dp[441]; for (int i = 0; i <= n; i++) { for (int j = 0; j <= n; j++) { dp[i * (n + 1) + j] = 0; } } for (int i = 1; i <= n; i++) { for (int j = 1; j <= n; j++) { if (a[i - 1] == b[j - 1]) { dp[i * (n + 1) + j] = dp[(i - 1) * (n + 1) + j - 1] + 1; } else { int u = dp[(i - 1) * (n + 1) + j]; int l = dp[i * (n + 1) + j - 1]; if (u > l) { dp[i * (n + 1) + j] = u; } else { dp[i * (n + 1) + j] = l; } } } } print_int(dp[n * (n + 1) + n]); }",
                "int lcs(int a[], int b[], int i, int j) { if (i < 0 || j < 0) { return 0; } if (a[i] == b[j]) { return lcs(a, b, i - 1, j - 1) + 1; } int x = lcs(a, b, i - 1, j); int y = lcs(a, b, i, j - 1); if (x > y) { return x; } return y; } void main() { int n = read_int(); int a[20]; int b[20]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { b[i] = read_int(); } print_int(lcs(a, b, n - 1, n - 1)); }",
            ],
            inputs: InputSpec::TwoIntArrays { max_len: 7, lo: 0, hi: 3 },
        },
        ProblemSpec {
            name: "lis_length",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int dp[30]; int best = 0; for (int i = 0; i < n; i++) { dp[i] = 1; for (int j = 0; j < i; j++) { if (a[j] < a[i] && dp[j] + 1 > dp[i]) { dp[i] = dp[j] + 1; } } if (dp[i] > best) { best = dp[i]; } } print_int(best); }",
                "int ending_at(int a[], int i) { int best = 1; for (int j = 0; j < i; j++) { if (a[j] < a[i]) { int c = ending_at(a, j) + 1; if (c > best) { best = c; } } } return best; } void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = 0; for (int i = 0; i < n; i++) { int c = ending_at(a, i); if (c > best) { best = c; } } print_int(best); }",
            ],
            inputs: InputSpec::IntArray { max_len: 12, lo: 0, hi: 30 },
        },
        ProblemSpec {
            name: "edit_distance",
            variants: &[
                "void main() { int n = read_int(); int a[15]; int b[15]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { b[i] = read_int(); } int dp[256]; int w = n + 1; for (int i = 0; i <= n; i++) { dp[i * w] = i; dp[i] = i; } for (int i = 1; i <= n; i++) { for (int j = 1; j <= n; j++) { int cost = 1; if (a[i - 1] == b[j - 1]) { cost = 0; } int best = dp[(i - 1) * w + j - 1] + cost; int del = dp[(i - 1) * w + j] + 1; int ins = dp[i * w + j - 1] + 1; if (del < best) { best = del; } if (ins < best) { best = ins; } dp[i * w + j] = best; } } print_int(dp[n * w + n]); }",
                "int min3(int a, int b, int c) { int m = a; if (b < m) { m = b; } if (c < m) { m = c; } return m; } int ed(int a[], int b[], int i, int j) { if (i == 0) { return j; } if (j == 0) { return i; } int cost = 1; if (a[i - 1] == b[j - 1]) { cost = 0; } return min3(ed(a, b, i - 1, j - 1) + cost, ed(a, b, i - 1, j) + 1, ed(a, b, i, j - 1) + 1); } void main() { int n = read_int(); int a[15]; int b[15]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { b[i] = read_int(); } print_int(ed(a, b, n, n)); }",
            ],
            inputs: InputSpec::TwoIntArrays { max_len: 5, lo: 0, hi: 3 },
        },
        ProblemSpec {
            name: "subset_sum",
            variants: &[
                "void main() { int n = read_int(); int a[20]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int target = 15; int dp[200]; for (int i = 0; i <= target; i++) { dp[i] = 0; } dp[0] = 1; for (int i = 0; i < n; i++) { for (int v = target; v >= a[i]; v--) { if (dp[v - a[i]] == 1) { dp[v] = 1; } } } print_int(dp[target]); }",
                "int can(int a[], int n, int i, int rem) { if (rem == 0) { return 1; } if (i >= n || rem < 0) { return 0; } if (can(a, n, i + 1, rem - a[i]) == 1) { return 1; } return can(a, n, i + 1, rem); } void main() { int n = read_int(); int a[20]; for (int i = 0; i < n; i++) { a[i] = read_int(); } print_int(can(a, n, 0, 15)); }",
            ],
            inputs: InputSpec::IntArray { max_len: 12, lo: 1, hi: 9 },
        },
        ProblemSpec {
            name: "knapsack_01",
            variants: &[
                "void main() { int n = read_int(); int w[15]; int v[15]; for (int i = 0; i < n; i++) { w[i] = read_int(); } for (int i = 0; i < n; i++) { v[i] = read_int(); } int cap = 20; int dp[21]; for (int c = 0; c <= cap; c++) { dp[c] = 0; } for (int i = 0; i < n; i++) { for (int c = cap; c >= w[i]; c--) { int cand = dp[c - w[i]] + v[i]; if (cand > dp[c]) { dp[c] = cand; } } } print_int(dp[cap]); }",
                "int best(int w[], int v[], int n, int i, int cap) { if (i >= n) { return 0; } int skip = best(w, v, n, i + 1, cap); if (w[i] > cap) { return skip; } int take = best(w, v, n, i + 1, cap - w[i]) + v[i]; if (take > skip) { return take; } return skip; } void main() { int n = read_int(); int w[15]; int v[15]; for (int i = 0; i < n; i++) { w[i] = read_int(); } for (int i = 0; i < n; i++) { v[i] = read_int(); } print_int(best(w, v, n, 0, 20)); }",
            ],
            inputs: InputSpec::TwoIntArrays { max_len: 10, lo: 1, hi: 12 },
        },
        ProblemSpec {
            name: "rod_cutting",
            variants: &[
                "void main() { int n = read_int(); int price[11]; for (int i = 1; i <= 10; i++) { price[i] = i * 2 + i % 3; } int dp[60]; dp[0] = 0; for (int len = 1; len <= n; len++) { int b = 0; for (int cut = 1; cut <= 10 && cut <= len; cut++) { int cand = price[cut] + dp[len - cut]; if (cand > b) { b = cand; } } dp[len] = b; } print_int(dp[n]); }",
                "int price(int i) { return i * 2 + i % 3; } int rod(int n) { if (n == 0) { return 0; } int b = 0; for (int cut = 1; cut <= 10 && cut <= n; cut++) { int cand = price(cut) + rod(n - cut); if (cand > b) { b = cand; } } return b; } void main() { print_int(rod(read_int())); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 14 },
        },
        ProblemSpec {
            name: "grid_paths",
            variants: &[
                "void main() { int n = read_int(); int m = read_int(); int dp[150]; for (int j = 0; j < m; j++) { dp[j] = 1; } for (int i = 1; i < n; i++) { for (int j = 1; j < m; j++) { dp[j] += dp[j - 1]; } } print_int(dp[m - 1]); }",
                "int paths(int i, int j) { if (i == 0 || j == 0) { return 1; } return paths(i - 1, j) + paths(i, j - 1); } void main() { int n = read_int(); int m = read_int(); print_int(paths(n - 1, m - 1)); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 1, hi: 9 },
        },
        ProblemSpec {
            name: "triangle_max_path",
            variants: &[
                "void main() { int rows = read_int(); int t[80]; int k = 0; for (int i = 0; i < rows; i++) { for (int j = 0; j <= i; j++) { t[k] = (k * 7 + 3) % 10; k++; } } int dp[80]; int base = rows * (rows - 1) / 2; for (int j = 0; j < rows; j++) { dp[j] = t[base + j]; } for (int i = rows - 2; i >= 0; i--) { int b2 = i * (i + 1) / 2; for (int j = 0; j <= i; j++) { int l = dp[j]; int r = dp[j + 1]; if (l > r) { dp[j] = t[b2 + j] + l; } else { dp[j] = t[b2 + j] + r; } } } print_int(dp[0]); }",
                "int cell(int k) { return (k * 7 + 3) % 10; } int best(int rows, int i, int j) { int k = i * (i + 1) / 2 + j; if (i == rows - 1) { return cell(k); } int l = best(rows, i + 1, j); int r = best(rows, i + 1, j + 1); if (l > r) { return cell(k) + l; } return cell(k) + r; } void main() { int rows = read_int(); print_int(best(rows, 0, 0)); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 11 },
        },
        ProblemSpec {
            name: "matrix_trace",
            variants: &[
                "void main() { int n = read_int(); int m[36]; for (int i = 0; i < n * n; i++) { m[i] = read_int(); } int s = 0; for (int i = 0; i < n; i++) { s += m[i * n + i]; } print_int(s); }",
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { int v = read_int(); if (i == j) { s += v; } } } print_int(s); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 6, lo: -9, hi: 9 },
        },
        ProblemSpec {
            name: "matrix_transpose_diff",
            variants: &[
                "void main() { int n = read_int(); int m[36]; for (int i = 0; i < n * n; i++) { m[i] = read_int(); } int d = 0; for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { int x = m[i * n + j] - m[j * n + i]; if (x < 0) { x = -x; } d += x; } } print_int(d); }",
                "int iabs(int x) { if (x < 0) { return -x; } return x; } void main() { int n = read_int(); int m[36]; for (int i = 0; i < n * n; i++) { m[i] = read_int(); } int d = 0; int i = 0; while (i < n) { int j = 0; while (j < n) { d += iabs(m[i * n + j] - m[j * n + i]); j++; } i++; } print_int(d); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 6, lo: 0, hi: 9 },
        },
        ProblemSpec {
            name: "matrix_symmetric",
            variants: &[
                "void main() { int n = read_int(); int m[36]; for (int i = 0; i < n * n; i++) { m[i] = read_int(); } int sym = 1; for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { if (m[i * n + j] != m[j * n + i]) { sym = 0; } } } print_int(sym); }",
                "void main() { int n = read_int(); int m[36]; for (int i = 0; i < n * n; i++) { m[i] = read_int(); } for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { if (m[i * n + j] != m[j * n + i]) { print_int(0); return; } } } print_int(1); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 4, lo: 0, hi: 2 },
        },
        ProblemSpec {
            name: "matrix_row_max_sum",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { int m = read_int(); for (int j = 1; j < n; j++) { int v = read_int(); if (v > m) { m = v; } } s += m; } print_int(s); }",
                "void main() { int n = read_int(); int a[36]; for (int i = 0; i < n * n; i++) { a[i] = read_int(); } int s = 0; for (int i = 0; i < n; i++) { int m = a[i * n]; for (int j = 1; j < n; j++) { if (a[i * n + j] > m) { m = a[i * n + j]; } } s += m; } print_int(s); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 6, lo: -20, hi: 20 },
        },
        ProblemSpec {
            name: "matrix_mult_corner",
            variants: &[
                "void main() { int n = read_int(); int a[36]; for (int i = 0; i < n * n; i++) { a[i] = read_int(); } int c = 0; for (int k = 0; k < n; k++) { c += a[k] * a[k * n]; } print_int(c); }",
                "void main() { int n = read_int(); int a[36]; int i = 0; while (i < n * n) { a[i] = read_int(); i++; } int c = 0; int k = n - 1; while (k >= 0) { c = c + a[0 * n + k] * a[k * n + 0]; k--; } print_int(c); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 6, lo: -9, hi: 9 },
        },
        ProblemSpec {
            name: "matrix_border_sum",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { int v = read_int(); if (i == 0 || i == n - 1 || j == 0 || j == n - 1) { s += v; } } } print_int(s); }",
                "void main() { int n = read_int(); int a[36]; for (int i = 0; i < n * n; i++) { a[i] = read_int(); } int s = 0; for (int i = 0; i < n * n; i++) { int r = i / n; int c = i % n; if (r * c == 0 || r == n - 1 || c == n - 1) { s += a[i]; } } print_int(s); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 6, lo: -9, hi: 9 },
        },
        ProblemSpec {
            name: "magic_square_check",
            variants: &[
                "void main() { int n = read_int(); int a[36]; for (int i = 0; i < n * n; i++) { a[i] = read_int(); } int target = 0; for (int j = 0; j < n; j++) { target += a[j]; } int ok = 1; for (int i = 0; i < n; i++) { int s = 0; for (int j = 0; j < n; j++) { s += a[i * n + j]; } if (s != target) { ok = 0; } } for (int j = 0; j < n; j++) { int s = 0; for (int i = 0; i < n; i++) { s += a[i * n + j]; } if (s != target) { ok = 0; } } print_int(ok); }",
                "int rowsum(int a[], int n, int i) { int s = 0; for (int j = 0; j < n; j++) { s += a[i * n + j]; } return s; } int colsum(int a[], int n, int j) { int s = 0; for (int i = 0; i < n; i++) { s += a[i * n + j]; } return s; } void main() { int n = read_int(); int a[36]; for (int i = 0; i < n * n; i++) { a[i] = read_int(); } int t = rowsum(a, n, 0); for (int i = 0; i < n; i++) { if (rowsum(a, n, i) != t || colsum(a, n, i) != t) { print_int(0); return; } } print_int(1); }",
            ],
            inputs: InputSpec::IntMatrix { max_n: 3, lo: 0, hi: 3 },
        },
        ProblemSpec {
            name: "pascal_row_sum",
            variants: &[
                "void main() { int n = read_int(); int row[40]; row[0] = 1; for (int i = 1; i <= n; i++) { for (int j = i; j >= 1; j--) { if (j == i) { row[j] = 1; } else { row[j] = row[j] + row[j - 1]; } } } int s = 0; for (int j = 0; j <= n; j++) { s += row[j] * row[j]; } print_int(s); }",
                "int c(int n, int k) { if (k == 0 || k == n) { return 1; } return c(n - 1, k - 1) + c(n - 1, k); } void main() { int n = read_int(); int s = 0; for (int k = 0; k <= n; k++) { int v = c(n, k); s += v * v; } print_int(s); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 11 },
        },
        ProblemSpec {
            name: "catalan",
            variants: &[
                "void main() { int n = read_int(); int dp[20]; dp[0] = 1; for (int i = 1; i <= n; i++) { dp[i] = 0; for (int j = 0; j < i; j++) { dp[i] += dp[j] * dp[i - 1 - j]; } } print_int(dp[n]); }",
                "int cat(int n) { if (n == 0) { return 1; } int s = 0; for (int j = 0; j < n; j++) { s += cat(j) * cat(n - 1 - j); } return s; } void main() { print_int(cat(read_int())); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 9 },
        },
        ProblemSpec {
            name: "hanoi_moves",
            variants: &[
                "void main() { int n = read_int(); int moves = 1; for (int i = 0; i < n; i++) { moves *= 2; } print_int(moves - 1); }",
                "int hanoi(int n) { if (n == 0) { return 0; } return 2 * hanoi(n - 1) + 1; } void main() { print_int(hanoi(read_int())); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 25 },
        },
        ProblemSpec {
            name: "josephus",
            variants: &[
                "void main() { int n = read_int(); int k = read_int(); int r = 0; for (int i = 2; i <= n; i++) { r = (r + k) % i; } print_int(r + 1); }",
                "int jos(int n, int k) { if (n == 1) { return 0; } return (jos(n - 1, k) + k) % n; } void main() { int n = read_int(); int k = read_int(); print_int(jos(n, k) + 1); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 1, hi: 30 },
        },
        ProblemSpec {
            name: "partition_count",
            variants: &[
                "void main() { int n = read_int(); int dp[40]; dp[0] = 1; for (int i = 1; i <= n; i++) { dp[i] = 0; } for (int part = 1; part <= n; part++) { for (int v = part; v <= n; v++) { dp[v] += dp[v - part]; } } print_int(dp[n]); }",
                "int p(int n, int maxp) { if (n == 0) { return 1; } if (maxp == 0) { return 0; } if (maxp > n) { return p(n, n); } return p(n - maxp, maxp) + p(n, maxp - 1); } void main() { int n = read_int(); print_int(p(n, n)); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 25 },
        },
        ProblemSpec {
            name: "longest_plateau",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = 1; int cur = 1; for (int i = 1; i < n; i++) { if (a[i] == a[i - 1]) { cur++; } else { cur = 1; } if (cur > best) { best = cur; } } print_int(best); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = 1; for (int i = 0; i < n; i++) { int len = 1; int j = i + 1; while (j < n && a[j] == a[i]) { len++; j++; } if (len > best) { best = len; } } print_int(best); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 0, hi: 2 },
        },
        ProblemSpec {
            name: "max_gap",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int g = 0; for (int i = 1; i < n; i++) { int d = a[i] - a[i - 1]; if (d < 0) { d = -d; } if (d > g) { g = d; } } print_int(g); }",
                "int iabs(int x) { if (x >= 0) { return x; } return -x; } void main() { int n = read_int(); int prev = read_int(); int g = 0; for (int i = 1; i < n; i++) { int v = read_int(); int d = iabs(v - prev); if (d > g) { g = d; } prev = v; } print_int(g); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: -50, hi: 50 },
        },
        ProblemSpec {
            name: "stock_profit",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int minp = a[0]; int best = 0; for (int i = 1; i < n; i++) { if (a[i] - minp > best) { best = a[i] - minp; } if (a[i] < minp) { minp = a[i]; } } print_int(best); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = 0; for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { if (a[j] - a[i] > best) { best = a[j] - a[i]; } } } print_int(best); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 1, hi: 99 },
        },
    ]
}
