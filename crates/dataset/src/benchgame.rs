//! The 16 benchmark programs of RQ6 (Figure 13), modelled on "The
//! Computer Language Benchmarks Game" suite the paper runs: small kernels
//! whose running time (here: the interpreter's deterministic cost model)
//! responds strongly to optimization and obfuscation.


/// A benchmark: a name and a MiniC source whose `main` takes no input.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The Benchmarks-Game-style name.
    pub name: &'static str,
    /// Program source.
    pub source: &'static str,
}

/// The 16 benchmark programs.
pub const BENCHMARKS: [Benchmark; 16] = [
    Benchmark {
        name: "ary3",
        source: "void main() { int n = 300; int x[300]; int y[300]; for (int i = 0; i < n; i++) { x[i] = i + 1; y[i] = 0; } for (int k = 0; k < 40; k++) { for (int i = n - 1; i >= 0; i--) { y[i] = y[i] + x[i]; } } print_int(y[0] + y[n - 1]); }",
    },
    Benchmark {
        name: "fibo",
        source: "int fib(int n) { if (n < 2) { return 1; } return fib(n - 1) + fib(n - 2); } void main() { print_int(fib(17)); }",
    },
    Benchmark {
        name: "nsieve",
        source: "void main() { int n = 2000; int flags[2000]; int count = 0; for (int i = 0; i < n; i++) { flags[i] = 1; } for (int i = 2; i < n; i++) { if (flags[i] == 1) { count++; for (int k = i + i; k < n; k += i) { flags[k] = 0; } } } print_int(count); }",
    },
    Benchmark {
        name: "matrix",
        source: "void main() { int n = 18; int a[324]; int b[324]; int c[324]; for (int i = 0; i < n * n; i++) { a[i] = i % 7; b[i] = i % 5; c[i] = 0; } for (int r = 0; r < 6; r++) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { int s = 0; for (int k = 0; k < n; k++) { s += a[i * n + k] * b[k * n + j]; } c[i * n + j] = s; } } } print_int(c[n * n - 1]); }",
    },
    Benchmark {
        name: "random",
        source: "void main() { int seed = 42; int last = 0; for (int i = 0; i < 30000; i++) { seed = (seed * 3877 + 29573) % 139968; last = seed; } print_int(last); }",
    },
    Benchmark {
        name: "heapsort",
        source: "void main() { int n = 250; int a[250]; int seed = 7; for (int i = 0; i < n; i++) { seed = (seed * 137 + 19) % 10007; a[i] = seed; } for (int i = 1; i < n; i++) { int key = a[i]; int j = i - 1; while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; } a[j + 1] = key; } print_int(a[0] + a[n - 1] + a[n / 2]); }",
    },
    Benchmark {
        name: "nestedloop",
        source: "void main() { int x = 0; int n = 14; for (int a = 0; a < n; a++) { for (int b = 0; b < n; b++) { for (int c = 0; c < n; c++) { for (int d = 0; d < n; d++) { x++; } } } } print_int(x); }",
    },
    Benchmark {
        name: "ackermann",
        source: "int ack(int m, int n) { if (m == 0) { return n + 1; } if (n == 0) { return ack(m - 1, 1); } return ack(m - 1, ack(m, n - 1)); } void main() { print_int(ack(2, 6)); }",
    },
    Benchmark {
        name: "hash",
        source: "void main() { int size = 512; int table[512]; int hits = 0; for (int i = 0; i < size; i++) { table[i] = -1; } for (int i = 0; i < 4000; i++) { int key = (i * 2654435761) % 104729; int slot = key % size; if (slot < 0) { slot += size; } if (table[slot] == key) { hits++; } else { table[slot] = key; } } print_int(hits); }",
    },
    Benchmark {
        name: "lists",
        source: "void main() { int n = 400; int list[400]; int len = 0; for (int i = 0; i < n; i++) { list[len] = i * 3 % 101; len++; } int moved = 0; for (int i = 0; i < len; i++) { if (list[i] % 2 == 0) { moved++; } } int rev[400]; for (int i = 0; i < len; i++) { rev[i] = list[len - 1 - i]; } int same = 0; for (int i = 0; i < len; i++) { if (rev[i] == list[i]) { same++; } } for (int r = 0; r < 20; r++) { for (int i = 0; i < len; i++) { rev[i] = rev[i] + list[i]; } } print_int(moved + same + rev[0]); }",
    },
    Benchmark {
        name: "moments",
        source: "void main() { int n = 500; float sum = 0.0; float data[500]; for (int i = 0; i < n; i++) { data[i] = (float)(i % 97) * 0.5; sum = sum + data[i]; } float mean = sum / (float)n; float dev = 0.0; float var = 0.0; for (int i = 0; i < n; i++) { dev = data[i] - mean; var = var + dev * dev; } print_float(var / (float)(n - 1)); }",
    },
    Benchmark {
        name: "nbody",
        source: "void main() { float px[5]; float py[5]; float vx[5]; float vy[5]; for (int i = 0; i < 5; i++) { px[i] = (float)i * 1.5; py[i] = (float)i * 0.5 - 1.0; vx[i] = 0.01; vy[i] = -0.01; } for (int step = 0; step < 120; step++) { for (int i = 0; i < 5; i++) { for (int j = 0; j < 5; j++) { if (i != j) { float dx = px[j] - px[i]; float dy = py[j] - py[i]; float d2 = dx * dx + dy * dy + 0.1; vx[i] = vx[i] + dx / d2 * 0.001; vy[i] = vy[i] + dy / d2 * 0.001; } } } for (int i = 0; i < 5; i++) { px[i] = px[i] + vx[i]; py[i] = py[i] + vy[i]; } } print_float(px[0] + py[4]); }",
    },
    Benchmark {
        name: "spectralnorm",
        source: "float a(int i, int j) { return 1.0 / (float)((i + j) * (i + j + 1) / 2 + i + 1); } void main() { int n = 24; float u[24]; float v[24]; for (int i = 0; i < n; i++) { u[i] = 1.0; } for (int it = 0; it < 6; it++) { for (int i = 0; i < n; i++) { float s = 0.0; for (int j = 0; j < n; j++) { s = s + a(i, j) * u[j]; } v[i] = s; } for (int i = 0; i < n; i++) { float s = 0.0; for (int j = 0; j < n; j++) { s = s + a(j, i) * v[j]; } u[i] = s; } } float num = 0.0; float den = 0.0; for (int i = 0; i < n; i++) { num = num + u[i] * v[i]; den = den + v[i] * v[i]; } print_float(num / den); }",
    },
    Benchmark {
        name: "mandelbrot",
        source: "void main() { int inside = 0; for (int yi = 0; yi < 40; yi++) { for (int xi = 0; xi < 40; xi++) { float cx = (float)xi / 20.0 - 1.5; float cy = (float)yi / 20.0 - 1.0; float zx = 0.0; float zy = 0.0; int it = 0; while (it < 30 && zx * zx + zy * zy < 4.0) { float t = zx * zx - zy * zy + cx; zy = 2.0 * zx * zy + cy; zx = t; it++; } if (it == 30) { inside++; } } } print_int(inside); }",
    },
    Benchmark {
        name: "strcat",
        source: "void main() { int cap = 900; int buf[900]; int len = 0; for (int r = 0; r < 150; r++) { int word[6]; for (int i = 0; i < 6; i++) { word[i] = 97 + (r + i) % 26; } for (int i = 0; i < 6 && len < cap; i++) { buf[len] = word[i]; len++; } } int check = 0; for (int i = 0; i < len; i++) { check = (check * 31 + buf[i]) % 1000003; } print_int(check); }",
    },
    Benchmark {
        name: "binarytrees",
        source: "int build(int depth) { if (depth == 0) { return 1; } return 1 + build(depth - 1) + build(depth - 1); } void main() { int total = 0; for (int d = 1; d <= 12; d++) { total += build(d); } print_int(total); }",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run, ExecConfig};

    #[test]
    fn sixteen_benchmarks() {
        assert_eq!(BENCHMARKS.len(), 16);
        let names: std::collections::HashSet<&str> =
            BENCHMARKS.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn all_benchmarks_compile_and_run() {
        for b in BENCHMARKS {
            let p = yali_minic::parse(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            yali_minic::check(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let m = yali_minic::lower(&p);
            yali_ir::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let cfg = ExecConfig {
                fuel: 20_000_000,
                ..Default::default()
            };
            let out = run(&m, "main", &[], &[], &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(out.output.len(), 1, "{} should print once", b.name);
            assert!(out.cost > 1000, "{} is too trivial: {}", b.name, out.cost);
        }
    }

    #[test]
    fn o3_speeds_up_and_ollvm_slows_down() {
        // The shape of Figure 13 on a single representative benchmark.
        use rand::SeedableRng;
        let b = &BENCHMARKS[0]; // ary3
        let p = yali_minic::parse(b.source).unwrap();
        let m0 = yali_minic::lower(&p);
        let cfg = ExecConfig {
            fuel: 50_000_000,
            ..Default::default()
        };
        let base = run(&m0, "main", &[], &[], &cfg).unwrap();
        let m3 = yali_opt::optimized(&m0, yali_opt::OptLevel::O3);
        let fast = run(&m3, "main", &[], &[], &cfg).unwrap();
        let mut mo = m0.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        yali_obf::ollvm(&mut mo, &mut rng);
        let slow = run(&mo, "main", &[], &[], &cfg).unwrap();
        assert_eq!(base.output, fast.output);
        assert_eq!(base.output, slow.output);
        assert!(fast.cost < base.cost, "O3 {} !< O0 {}", fast.cost, base.cost);
        assert!(slow.cost > base.cost, "ollvm {} !> O0 {}", slow.cost, base.cost);
    }
}
