//! Problems 78–103: bit manipulation, character/string processing (strings
//! travel as arrays of character codes), and floating-point tasks.

use crate::spec::{InputSpec, ProblemSpec};

const CHARS: InputSpec = InputSpec::IntArray {
    max_len: 20,
    lo: 97,
    hi: 122,
};

/// The miscellaneous problem specifications.
pub fn specs() -> Vec<ProblemSpec> {
    vec![
        ProblemSpec {
            name: "popcount",
            variants: &[
                "void main() { int n = read_int(); int c = 0; while (n > 0) { c += n & 1; n = n >> 1; } print_int(c); }",
                "void main() { int n = read_int(); int c = 0; while (n != 0) { n = n & (n - 1); c++; } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 1000000 },
        },
        ProblemSpec {
            name: "parity",
            variants: &[
                "void main() { int n = read_int(); int p = 0; while (n > 0) { p = p ^ (n & 1); n >>= 1; } print_int(p); }",
                "void main() { int n = read_int(); int c = 0; while (n > 0) { c += n & 1; n = n / 2; } print_int(c % 2); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 1000000 },
        },
        ProblemSpec {
            name: "is_power_of_two",
            variants: &[
                "void main() { int n = read_int(); if (n > 0 && (n & (n - 1)) == 0) { print_int(1); } else { print_int(0); } }",
                "void main() { int n = read_int(); if (n <= 0) { print_int(0); return; } while (n % 2 == 0) { n /= 2; } print_int(n == 1); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 5000 },
        },
        ProblemSpec {
            name: "hamming_distance",
            variants: &[
                "void main() { int a = read_int(); int b = read_int(); int x = a ^ b; int c = 0; while (x > 0) { c += x & 1; x >>= 1; } print_int(c); }",
                "void main() { int a = read_int(); int b = read_int(); int c = 0; for (int i = 0; i < 30; i++) { if ((a >> i & 1) != (b >> i & 1)) { c++; } } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 0, hi: 1000000 },
        },
        ProblemSpec {
            name: "binary_digits",
            variants: &[
                "void main() { int n = read_int(); int d = 0; while (n > 0) { d++; n >>= 1; } print_int(d); }",
                "void main() { int n = read_int(); int d = 0; int p = 1; while (p <= n) { p *= 2; d++; } print_int(d); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 1000000 },
        },
        ProblemSpec {
            name: "swap_bits_value",
            variants: &[
                "void main() { int n = read_int(); int lo = n & 15; int hi = n >> 4 & 15; print_int(lo * 16 + hi); }",
                "void main() { int n = read_int(); print_int((n & 15) * 16 + (n / 16 & 15)); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 255 },
        },
        ProblemSpec {
            name: "xor_checksum",
            variants: &[
                "void main() { int n = read_int(); int x = 0; for (int i = 0; i < n; i++) { x ^= read_int(); } print_int(x); }",
                "void main() { int n = read_int(); int x = 0; int i = 0; while (i < n) { int v = read_int(); x = x ^ v; i = i + 1; } print_int(x); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 0, hi: 255 },
        },
        ProblemSpec {
            name: "gray_code",
            variants: &[
                "void main() { int n = read_int(); print_int(n ^ (n >> 1)); }",
                "void main() { int n = read_int(); int g = n; g = g ^ (n / 2); print_int(g); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 100000 },
        },
        ProblemSpec {
            name: "string_palindrome",
            variants: &[
                "void main() { int n = read_int(); int s[30]; for (int i = 0; i < n; i++) { s[i] = read_int(); } int ok = 1; for (int i = 0; i < n / 2; i++) { if (s[i] != s[n - 1 - i]) { ok = 0; } } print_int(ok); }",
                "void main() { int n = read_int(); int s[30]; for (int i = 0; i < n; i++) { s[i] = read_int(); } int i = 0; int j = n - 1; while (i < j) { if (s[i] != s[j]) { print_int(0); return; } i++; j--; } print_int(1); }",
            ],
            inputs: InputSpec::IntArray { max_len: 15, lo: 97, hi: 99 },
        },
        ProblemSpec {
            name: "count_vowels",
            variants: &[
                "void main() { int n = read_int(); int c = 0; for (int i = 0; i < n; i++) { int ch = read_int(); if (ch == 97 || ch == 101 || ch == 105 || ch == 111 || ch == 117) { c++; } } print_int(c); }",
                "int vowel(int ch) { if (ch == 97) { return 1; } if (ch == 101) { return 1; } if (ch == 105) { return 1; } if (ch == 111) { return 1; } if (ch == 117) { return 1; } return 0; } void main() { int n = read_int(); int c = 0; for (int i = 0; i < n; i++) { c += vowel(read_int()); } print_int(c); }",
            ],
            inputs: CHARS,
        },
        ProblemSpec {
            name: "caesar_checksum",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { int ch = read_int(); int e = (ch - 97 + 3) % 26 + 97; s += e * (i + 1); } print_int(s); }",
                "int enc(int ch) { return (ch - 94) % 26 + 97; } void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { s += enc(read_int()) * (i + 1); } print_int(s); }",
            ],
            inputs: CHARS,
        },
        ProblemSpec {
            name: "run_length_longest",
            variants: &[
                "void main() { int n = read_int(); int s[30]; for (int i = 0; i < n; i++) { s[i] = read_int(); } int best = 1; int cur = 1; for (int i = 1; i < n; i++) { if (s[i] == s[i - 1]) { cur++; } else { cur = 1; } if (cur > best) { best = cur; } } print_int(best); }",
                "void main() { int n = read_int(); int prev = read_int(); int best = 1; int cur = 1; for (int i = 1; i < n; i++) { int v = read_int(); if (v == prev) { cur++; if (cur > best) { best = cur; } } else { cur = 1; } prev = v; } print_int(best); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 97, hi: 99 },
        },
        ProblemSpec {
            name: "char_mode",
            variants: &[
                "void main() { int n = read_int(); int freq[26]; for (int i = 0; i < 26; i++) { freq[i] = 0; } for (int i = 0; i < n; i++) { int ch = read_int(); freq[ch - 97]++; } int best = 0; for (int i = 1; i < 26; i++) { if (freq[i] > freq[best]) { best = i; } } print_int(best + 97); }",
                "void main() { int n = read_int(); int s[30]; for (int i = 0; i < n; i++) { s[i] = read_int(); } int bc = 0; int bv = 200; for (int i = 0; i < n; i++) { int c = 0; for (int j = 0; j < n; j++) { if (s[j] == s[i]) { c++; } } if (c > bc || c == bc && s[i] < bv) { bc = c; bv = s[i]; } } print_int(bv); }",
            ],
            inputs: CHARS,
        },
        ProblemSpec {
            name: "anagram_check",
            variants: &[
                "void main() { int n = read_int(); int fa[26]; int fb[26]; for (int i = 0; i < 26; i++) { fa[i] = 0; fb[i] = 0; } for (int i = 0; i < n; i++) { int ch = read_int(); fa[ch - 97]++; } for (int i = 0; i < n; i++) { int ch = read_int(); fb[ch - 97]++; } for (int i = 0; i < 26; i++) { if (fa[i] != fb[i]) { print_int(0); return; } } print_int(1); }",
                "void main() { int n = read_int(); int d[26]; for (int i = 0; i < 26; i++) { d[i] = 0; } for (int i = 0; i < n; i++) { int ch = read_int(); d[ch - 97]++; } for (int i = 0; i < n; i++) { int ch = read_int(); d[ch - 97]--; } int ok = 1; for (int i = 0; i < 26; i++) { if (d[i] != 0) { ok = 0; } } print_int(ok); }",
            ],
            inputs: InputSpec::TwoIntArrays { max_len: 15, lo: 97, hi: 101 },
        },
        ProblemSpec {
            name: "char_distinct_pairs",
            variants: &[
                "void main() { int n = read_int(); int s[30]; for (int i = 0; i < n; i++) { s[i] = read_int(); } int c = 0; for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { if (s[i] != s[j]) { c++; } } } print_int(c); }",
                "void main() { int n = read_int(); int freq[26]; for (int i = 0; i < 26; i++) { freq[i] = 0; } for (int i = 0; i < n; i++) { int ch = read_int(); freq[ch - 97]++; } int same = 0; for (int i = 0; i < 26; i++) { same += freq[i] * (freq[i] - 1) / 2; } print_int(n * (n - 1) / 2 - same); }",
            ],
            inputs: InputSpec::IntArray { max_len: 20, lo: 97, hi: 100 },
        },
        ProblemSpec {
            name: "first_unique_char",
            variants: &[
                "void main() { int n = read_int(); int s[30]; for (int i = 0; i < n; i++) { s[i] = read_int(); } for (int i = 0; i < n; i++) { int unique = 1; for (int j = 0; j < n; j++) { if (j != i && s[j] == s[i]) { unique = 0; break; } } if (unique == 1) { print_int(s[i]); return; } } print_int(-1); }",
                "void main() { int n = read_int(); int s[30]; int freq[26]; for (int i = 0; i < 26; i++) { freq[i] = 0; } for (int i = 0; i < n; i++) { s[i] = read_int(); freq[s[i] - 97]++; } for (int i = 0; i < n; i++) { if (freq[s[i] - 97] == 1) { print_int(s[i]); return; } } print_int(-1); }",
            ],
            inputs: InputSpec::IntArray { max_len: 18, lo: 97, hi: 100 },
        },
        ProblemSpec {
            name: "float_mean",
            variants: &[
                "void main() { int n = read_int(); float s = 0.0; for (int i = 0; i < n; i++) { s = s + read_float(); } print_float(s / (float)n); }",
                "void main() { int n = read_int(); float s = 0.0; int i = 0; while (i < n) { s = s + read_float(); i++; } print_float(s / (float)n); }",
            ],
            inputs: InputSpec::FloatArray { max_len: 15, lo: -10.0, hi: 10.0 },
        },
        ProblemSpec {
            name: "float_max",
            variants: &[
                "void main() { int n = read_int(); float m = read_float(); for (int i = 1; i < n; i++) { float v = read_float(); if (v > m) { m = v; } } print_float(m); }",
                "void main() { int n = read_int(); float a[20]; for (int i = 0; i < n; i++) { a[i] = read_float(); } float m = a[0]; int i = 1; while (i < n) { if (a[i] > m) { m = a[i]; } i++; } print_float(m); }",
            ],
            inputs: InputSpec::FloatArray { max_len: 15, lo: -100.0, hi: 100.0 },
        },
        ProblemSpec {
            name: "dist2d",
            variants: &[
                "void main() { float x1 = read_float(); float y1 = read_float(); float x2 = read_float(); float y2 = read_float(); float dx = x1 - x2; float dy = y1 - y2; print_float(dx * dx + dy * dy); }",
                "float sq(float v) { return v * v; } void main() { float x1 = read_float(); float y1 = read_float(); float x2 = read_float(); float y2 = read_float(); print_float(sq(x1 - x2) + sq(y1 - y2)); }",
            ],
            inputs: InputSpec::Floats { count: 4, lo: -50.0, hi: 50.0 },
        },
        ProblemSpec {
            name: "polynomial_eval",
            variants: &[
                "void main() { float x = read_float(); print_float(((2.0 * x + 3.0) * x - 1.0) * x + 5.0); }",
                "void main() { float x = read_float(); float r = 2.0; r = r * x + 3.0; r = r * x - 1.0; r = r * x + 5.0; print_float(r); }",
            ],
            inputs: InputSpec::Floats { count: 1, lo: -5.0, hi: 5.0 },
        },
        ProblemSpec {
            name: "celsius_to_fahrenheit_sum",
            variants: &[
                "void main() { int n = read_int(); float s = 0.0; for (int i = 0; i < n; i++) { float c = read_float(); s = s + (c * 9.0 / 5.0 + 32.0); } print_float(s); }",
                "float conv(float c) { return c * 9.0 / 5.0 + 32.0; } void main() { int n = read_int(); float s = 0.0; for (int i = 0; i < n; i++) { s = s + conv(read_float()); } print_float(s); }",
            ],
            inputs: InputSpec::FloatArray { max_len: 12, lo: -40.0, hi: 40.0 },
        },
        ProblemSpec {
            name: "compound_interest",
            variants: &[
                "void main() { float p = read_float(); int years = read_int(); float r = 1.05; for (int i = 0; i < years; i++) { p = p * r; } print_float(p); }",
                "void main() { float p = read_float(); int years = read_int(); int i = 0; while (i < years) { p = p * 1.05; i++; } print_float(p); }",
            ],
            inputs: InputSpec::Floats { count: 2, lo: 1.0, hi: 20.0 },
        },
        ProblemSpec {
            name: "newton_sqrt_steps",
            variants: &[
                "void main() { float x = read_float(); float g = x; for (int i = 0; i < 20; i++) { g = (g + x / g) / 2.0; } print_float(g * g); }",
                "void main() { float x = read_float(); float g = x; int i = 0; while (i < 20) { g = (g + x / g) * 0.5; i++; } print_float(g * g); }",
            ],
            inputs: InputSpec::Floats { count: 1, lo: 1.0, hi: 1000.0 },
        },
        ProblemSpec {
            name: "weighted_average",
            variants: &[
                "void main() { int n = read_int(); float vs = 0.0; float ws = 0.0; for (int i = 0; i < n; i++) { float v = read_float(); float w = (float)(i + 1); vs = vs + v * w; ws = ws + w; } print_float(vs / ws); }",
                "void main() { int n = read_int(); float vs = 0.0; float ws = 0.0; int i = 0; while (i < n) { vs = vs + read_float() * (float)(i + 1); ws = ws + (float)(i + 1); i++; } print_float(vs / ws); }",
            ],
            inputs: InputSpec::FloatArray { max_len: 12, lo: 0.0, hi: 10.0 },
        },
        ProblemSpec {
            name: "clock_angle",
            variants: &[
                "void main() { int h = read_int(); int m = read_int(); int ha = h % 12 * 30 + m / 2; int ma = m * 6; int d = ha - ma; if (d < 0) { d = -d; } if (d > 180) { d = 360 - d; } print_int(d); }",
                "int iabs(int x) { if (x < 0) { return -x; } return x; } void main() { int h = read_int(); int m = read_int(); int d = iabs((h % 12) * 30 + m / 2 - m * 6); if (d > 180) { print_int(360 - d); } else { print_int(d); } }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 0, hi: 59 },
        },
        ProblemSpec {
            name: "fizzbuzz_score",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 1; i <= n; i++) { if (i % 15 == 0) { s += 4; } else { if (i % 3 == 0) { s += 1; } else { if (i % 5 == 0) { s += 2; } } } } print_int(s); }",
                "int score(int i) { if (i % 15 == 0) { return 4; } if (i % 3 == 0) { return 1; } if (i % 5 == 0) { return 2; } return 0; } void main() { int n = read_int(); int s = 0; for (int i = 1; i <= n; i++) { s += score(i); } print_int(s); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 500 },
        },
    ]
}
