//! Problems 26–51: array processing (search, scan, sort, and aggregate
//! tasks). Inputs arrive as a length followed by the elements.

use crate::spec::{InputSpec, ProblemSpec};

const ARR: InputSpec = InputSpec::IntArray {
    max_len: 25,
    lo: -50,
    hi: 50,
};

const ARR_POS: InputSpec = InputSpec::IntArray {
    max_len: 25,
    lo: 0,
    hi: 99,
};

/// The array problem specifications.
pub fn specs() -> Vec<ProblemSpec> {
    vec![
        ProblemSpec {
            name: "array_sum",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } print_int(s); }",
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { s += read_int(); } print_int(s); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "array_max",
            variants: &[
                "void main() { int n = read_int(); int m = read_int(); for (int i = 1; i < n; i++) { int v = read_int(); if (v > m) { m = v; } } print_int(m); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int m = a[0]; for (int i = 1; i < n; i++) { if (a[i] > m) { m = a[i]; } } print_int(m); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "array_min",
            variants: &[
                "void main() { int n = read_int(); int m = read_int(); for (int i = 1; i < n; i++) { int v = read_int(); if (v < m) { m = v; } } print_int(m); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int m = a[0]; int i = 1; while (i < n) { if (a[i] < m) { m = a[i]; } i++; } print_int(m); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "array_mean_floor",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { s += read_int(); } print_int(s / n); }",
                "void main() { int n = read_int(); int a[30]; int s = 0; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { s = s + a[i]; } print_int(s / n); }",
            ],
            inputs: ARR_POS,
        },
        ProblemSpec {
            name: "count_even",
            variants: &[
                "void main() { int n = read_int(); int c = 0; for (int i = 0; i < n; i++) { int v = read_int(); if (v % 2 == 0) { c++; } } print_int(c); }",
                "void main() { int n = read_int(); int c = 0; int i = 0; while (i < n) { c += 1 - read_int() % 2; i++; } print_int(c); }",
            ],
            inputs: ARR_POS,
        },
        ProblemSpec {
            name: "count_positive",
            variants: &[
                "void main() { int n = read_int(); int c = 0; for (int i = 0; i < n; i++) { if (read_int() > 0) { c++; } } print_int(c); }",
                "void main() { int n = read_int(); int c = 0; for (int i = 0; i < n; i++) { int v = read_int(); if (v >= 1) { c = c + 1; } } print_int(c); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "linear_search",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int target = a[0]; int pos = -1; for (int i = 1; i < n; i++) { if (a[i] == target) { pos = i; break; } } print_int(pos); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int t = a[0]; int i = 1; while (i < n && a[i] != t) { i++; } if (i < n) { print_int(i); } else { print_int(-1); } }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 0, hi: 9 },
        },
        ProblemSpec {
            name: "reverse_print_sum",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int s = 0; for (int i = n - 1; i >= 0; i--) { s = s * 2 + a[i]; } print_int(s); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[n - 1 - i] = read_int(); } int s = 0; for (int i = 0; i < n; i++) { s = s * 2 + a[i]; } print_int(s); }",
            ],
            inputs: InputSpec::IntArray { max_len: 20, lo: 0, hi: 9 },
        },
        ProblemSpec {
            name: "second_max",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int m1 = -1000000; int m2 = -1000000; for (int i = 0; i < n; i++) { if (a[i] > m1) { m2 = m1; m1 = a[i]; } else { if (a[i] > m2) { m2 = a[i]; } } } print_int(m2); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { if (a[j] > a[i]) { int t = a[i]; a[i] = a[j]; a[j] = t; } } } if (n > 1) { print_int(a[1]); } else { print_int(-1000000); } }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "bubble_sort_output",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { for (int j = 0; j + 1 < n - i; j++) { if (a[j] > a[j + 1]) { int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; } } } for (int i = 0; i < n; i++) { print_int(a[i]); } }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 1; i < n; i++) { int key = a[i]; int j = i - 1; while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; } a[j + 1] = key; } for (int i = 0; i < n; i++) { print_int(a[i]); } }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { int mi = i; for (int j = i + 1; j < n; j++) { if (a[j] < a[mi]) { mi = j; } } int t = a[i]; a[i] = a[mi]; a[mi] = t; } for (int i = 0; i < n; i++) { print_int(a[i]); } }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "binary_search_sorted",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = i * 3; } int t = read_int(); int lo = 0; int hi = n - 1; int pos = -1; while (lo <= hi) { int mid = (lo + hi) / 2; if (a[mid] == t) { pos = mid; break; } if (a[mid] < t) { lo = mid + 1; } else { hi = mid - 1; } } print_int(pos); }",
                "void main() { int n = read_int(); int t = read_int(); if (t % 3 == 0 && t >= 0 && t / 3 < n) { print_int(t / 3); } else { print_int(-1); } }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 0, hi: 28 },
        },
        ProblemSpec {
            name: "distinct_count",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int c = 0; for (int i = 0; i < n; i++) { int fresh = 1; for (int j = 0; j < i; j++) { if (a[j] == a[i]) { fresh = 0; break; } } c += fresh; } print_int(c); }",
                "void main() { int n = read_int(); int seen[10]; for (int i = 0; i < 10; i++) { seen[i] = 0; } for (int i = 0; i < n; i++) { seen[read_int()] = 1; } int c = 0; for (int i = 0; i < 10; i++) { c += seen[i]; } print_int(c); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 0, hi: 9 },
        },
        ProblemSpec {
            name: "pair_sum_count",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int c = 0; for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { if (a[i] + a[j] == 10) { c++; } } } print_int(c); }",
                "void main() { int n = read_int(); int a[30]; int i = 0; while (i < n) { a[i] = read_int(); i++; } int c = 0; i = 0; while (i < n) { int j = i + 1; while (j < n) { if (10 - a[i] == a[j]) { c = c + 1; } j++; } i++; } print_int(c); }",
            ],
            inputs: InputSpec::IntArray { max_len: 20, lo: 0, hi: 10 },
        },
        ProblemSpec {
            name: "max_subarray",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = a[0]; int cur = a[0]; for (int i = 1; i < n; i++) { if (cur < 0) { cur = 0; } cur += a[i]; if (cur > best) { best = cur; } } print_int(best); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = a[0]; for (int i = 0; i < n; i++) { int s = 0; for (int j = i; j < n; j++) { s += a[j]; if (s > best) { best = s; } } } print_int(best); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "prefix_sum_query",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int p[31]; p[0] = 0; for (int i = 0; i < n; i++) { p[i + 1] = p[i] + a[i]; } print_int(p[n] - p[n / 2]); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int s = 0; for (int i = n / 2; i < n; i++) { s += a[i]; } print_int(s); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "dot_product",
            variants: &[
                "void main() { int n = read_int(); int a[30]; int b[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { b[i] = read_int(); } int s = 0; for (int i = 0; i < n; i++) { s += a[i] * b[i]; } print_int(s); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int s = 0; for (int i = 0; i < n; i++) { s += a[i] * read_int(); } print_int(s); }",
            ],
            inputs: InputSpec::TwoIntArrays { max_len: 20, lo: -9, hi: 9 },
        },
        ProblemSpec {
            name: "merge_sorted_median",
            variants: &[
                "void main() { int n = read_int(); int a[30]; int b[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { b[i] = read_int(); } int m[60]; int i = 0; int j = 0; int k = 0; for (int x = 0; x < n; x++) { for (int y = x + 1; y < n; y++) { if (a[y] < a[x]) { int t = a[x]; a[x] = a[y]; a[y] = t; } if (b[y] < b[x]) { int t = b[x]; b[x] = b[y]; b[y] = t; } } } while (i < n && j < n) { if (a[i] <= b[j]) { m[k] = a[i]; i++; } else { m[k] = b[j]; j++; } k++; } while (i < n) { m[k] = a[i]; i++; k++; } while (j < n) { m[k] = b[j]; j++; k++; } print_int(m[n]); }",
                "void main() { int n = read_int(); int all[60]; for (int i = 0; i < 2 * n; i++) { all[i] = read_int(); } for (int i = 0; i < 2 * n; i++) { for (int j = i + 1; j < 2 * n; j++) { if (all[j] < all[i]) { int t = all[i]; all[i] = all[j]; all[j] = t; } } } print_int(all[n]); }",
            ],
            inputs: InputSpec::TwoIntArrays { max_len: 15, lo: -20, hi: 20 },
        },
        ProblemSpec {
            name: "equilibrium_index",
            variants: &[
                "void main() { int n = read_int(); int a[30]; int total = 0; for (int i = 0; i < n; i++) { a[i] = read_int(); total += a[i]; } int left = 0; for (int i = 0; i < n; i++) { if (left == total - left - a[i]) { print_int(i); return; } left += a[i]; } print_int(-1); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } for (int i = 0; i < n; i++) { int l = 0; int r = 0; for (int j = 0; j < i; j++) { l += a[j]; } for (int j = i + 1; j < n; j++) { r += a[j]; } if (l == r) { print_int(i); return; } } print_int(-1); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "leaders_count",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int c = 0; int m = -1000000; for (int i = n - 1; i >= 0; i--) { if (a[i] > m) { c++; m = a[i]; } } print_int(c); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int c = 0; for (int i = 0; i < n; i++) { int lead = 1; for (int j = i + 1; j < n; j++) { if (a[j] >= a[i]) { lead = 0; break; } } c += lead; } print_int(c); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "majority_element",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int best = a[0]; int bc = 0; for (int i = 0; i < n; i++) { int c = 0; for (int j = 0; j < n; j++) { if (a[j] == a[i]) { c++; } } if (c > bc || c == bc && a[i] < best) { bc = c; best = a[i]; } } print_int(best); }",
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int cnt[6]; for (int i = 0; i < 6; i++) { cnt[i] = 0; } for (int i = 0; i < n; i++) { cnt[a[i]] = cnt[a[i]] + 1; } int best = 0; for (int v = 5; v >= 0; v--) { if (cnt[v] >= cnt[best]) { best = v; } } print_int(best); }",
            ],
            inputs: InputSpec::IntArray { max_len: 25, lo: 0, hi: 5 },
        },
        ProblemSpec {
            name: "rotate_sum_weighted",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int k = a[0] % n; if (k < 0) { k += n; } int s = 0; for (int i = 0; i < n; i++) { s += a[(i + k) % n] * i; } print_int(s); }",
                "void main() { int n = read_int(); int a[30]; int b[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int k = a[0] % n; if (k < 0) { k = k + n; } for (int i = 0; i < n; i++) { b[i] = a[(i + k) % n]; } int s = 0; for (int i = 0; i < n; i++) { s += b[i] * i; } print_int(s); }",
            ],
            inputs: ARR_POS,
        },
        ProblemSpec {
            name: "count_inversions",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int c = 0; for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { if (a[i] > a[j]) { c++; } } } print_int(c); }",
                "void main() { int n = read_int(); int a[30]; int i = 0; while (i < n) { a[i] = read_int(); i++; } int c = 0; i = 1; while (i < n) { int j = 0; while (j < i) { if (a[j] > a[i]) { c = c + 1; } j++; } i++; } print_int(c); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "is_sorted",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int ok = 1; for (int i = 1; i < n; i++) { if (a[i] < a[i - 1]) { ok = 0; break; } } print_int(ok); }",
                "void main() { int n = read_int(); int prev = read_int(); int ok = 1; for (int i = 1; i < n; i++) { int v = read_int(); if (v < prev) { ok = 0; } prev = v; } print_int(ok); }",
            ],
            inputs: InputSpec::IntArray { max_len: 10, lo: 0, hi: 5 },
        },
        ProblemSpec {
            name: "frequency_of_max",
            variants: &[
                "void main() { int n = read_int(); int a[30]; for (int i = 0; i < n; i++) { a[i] = read_int(); } int m = a[0]; for (int i = 1; i < n; i++) { if (a[i] > m) { m = a[i]; } } int c = 0; for (int i = 0; i < n; i++) { if (a[i] == m) { c++; } } print_int(c); }",
                "void main() { int n = read_int(); int m = -1000000; int c = 0; for (int i = 0; i < n; i++) { int v = read_int(); if (v > m) { m = v; c = 1; } else { if (v == m) { c++; } } } print_int(c); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "alternating_sum",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { int v = read_int(); if (i % 2 == 0) { s += v; } else { s -= v; } } print_int(s); }",
                "void main() { int n = read_int(); int s = 0; int sign = 1; for (int i = 0; i < n; i++) { s += sign * read_int(); sign = -sign; } print_int(s); }",
            ],
            inputs: ARR,
        },
        ProblemSpec {
            name: "range_clamp_sum",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { int v = read_int(); if (v < 0) { v = 0; } if (v > 20) { v = 20; } s += v; } print_int(s); }",
                "int clamp(int v) { if (v < 0) { return 0; } if (v > 20) { return 20; } return v; } void main() { int n = read_int(); int s = 0; for (int i = 0; i < n; i++) { s += clamp(read_int()); } print_int(s); }",
            ],
            inputs: ARR,
        },
    ]
}
