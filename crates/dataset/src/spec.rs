//! The programming-problem machinery: problem specifications, reference
//! oracles (Definition 2.1), and the author-variation engine that turns a
//! handful of hand-written variants into hundreds of distinct "human"
//! solutions per problem.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use yali_ir::interp::Val;
use yali_minic::Program;
use yali_obf::SourceTransform;

/// How a problem's random test inputs are drawn.
#[derive(Debug, Clone, Copy)]
pub enum InputSpec {
    /// `count` integers uniform in `[lo, hi]`.
    Ints {
        /// How many integers to read.
        count: usize,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// A length `1..=max_len` followed by that many integers in `[lo, hi]`.
    IntArray {
        /// Maximum array length.
        max_len: usize,
        /// Element lower bound.
        lo: i64,
        /// Element upper bound.
        hi: i64,
    },
    /// Two arrays: a shared length then `2 × len` integers.
    TwoIntArrays {
        /// Maximum array length.
        max_len: usize,
        /// Element lower bound.
        lo: i64,
        /// Element upper bound.
        hi: i64,
    },
    /// A square matrix: an order `1..=max_n` then `n²` integers.
    IntMatrix {
        /// Maximum matrix order.
        max_n: usize,
        /// Element lower bound.
        lo: i64,
        /// Element upper bound.
        hi: i64,
    },
    /// `count` floats uniform in `[lo, hi]`.
    Floats {
        /// How many floats to read.
        count: usize,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A length `1..=max_len` followed by that many floats.
    FloatArray {
        /// Maximum array length.
        max_len: usize,
        /// Element lower bound.
        lo: f64,
        /// Element upper bound.
        hi: f64,
    },
}

impl InputSpec {
    /// Draws one random input stream.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<Val> {
        match *self {
            InputSpec::Ints { count, lo, hi } => {
                (0..count).map(|_| Val::Int(rng.gen_range(lo..=hi))).collect()
            }
            InputSpec::IntArray { max_len, lo, hi } => {
                let n = rng.gen_range(1..=max_len);
                let mut v = vec![Val::Int(n as i64)];
                v.extend((0..n).map(|_| Val::Int(rng.gen_range(lo..=hi))));
                v
            }
            InputSpec::TwoIntArrays { max_len, lo, hi } => {
                let n = rng.gen_range(1..=max_len);
                let mut v = vec![Val::Int(n as i64)];
                v.extend((0..2 * n).map(|_| Val::Int(rng.gen_range(lo..=hi))));
                v
            }
            InputSpec::IntMatrix { max_n, lo, hi } => {
                let n = rng.gen_range(1..=max_n);
                let mut v = vec![Val::Int(n as i64)];
                v.extend((0..n * n).map(|_| Val::Int(rng.gen_range(lo..=hi))));
                v
            }
            InputSpec::Floats { count, lo, hi } => (0..count)
                .map(|_| Val::Float(round3(rng.gen_range(lo..=hi))))
                .collect(),
            InputSpec::FloatArray { max_len, lo, hi } => {
                let n = rng.gen_range(1..=max_len);
                let mut v = vec![Val::Int(n as i64)];
                v.extend((0..n).map(|_| Val::Float(round3(rng.gen_range(lo..=hi)))));
                v
            }
        }
    }
}

/// Rounds to 3 decimals so float oracles avoid representation noise.
fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// One programming problem: a reference oracle defined by its variants'
/// common I/O behaviour (Definition 2.1).
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// Short name (doubles as the class label).
    pub name: &'static str,
    /// Hand-written solution variants (MiniC sources; all must implement
    /// the same input → output function).
    pub variants: &'static [&'static str],
    /// Random-input distribution for the oracle.
    pub inputs: InputSpec,
}

/// The style transforms the author-variation engine may apply. This is a
/// *mild* subset of the evader's catalogue: renaming, loop style, operand
/// order, temporaries — the kind of diversity different humans produce.
const AUTHOR_STYLES: &[SourceTransform] = &[
    SourceTransform::ForToWhile,
    SourceTransform::JunkVariables,
    SourceTransform::NegateCondition,
    SourceTransform::SwapCommutative,
    SourceTransform::MirrorComparisons,
    SourceTransform::IntroduceTemps,
    SourceTransform::ExtraBraces,
    SourceTransform::RenameVariables,
    SourceTransform::ReorderDeclarations,
    SourceTransform::ArithmeticIdentity,
];

impl ProblemSpec {
    /// Parses (and caches nothing — templates are tiny) the base variant.
    ///
    /// # Panics
    ///
    /// Panics if a template fails to parse or type-check: templates are
    /// compile-time constants, so that is a bug in this crate.
    pub fn variant(&self, idx: usize) -> Program {
        let src = self.variants[idx % self.variants.len()];
        let p = yali_minic::parse(src)
            .unwrap_or_else(|e| panic!("template {}[{idx}] fails to parse: {e}\n{src}", self.name));
        yali_minic::check(&p)
            .unwrap_or_else(|e| panic!("template {}[{idx}] fails sema: {e}", self.name));
        p
    }

    /// Produces one "author" solution: a random variant with random style
    /// transforms applied (all semantic-preserving).
    pub fn author_solution(&self, seed: u64) -> Program {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let idx = rng.gen_range(0..self.variants.len());
        let mut p = self.variant(idx);
        let n_styles = rng.gen_range(1..=5);
        let mut pool = AUTHOR_STYLES.to_vec();
        pool.shuffle(&mut rng);
        for &t in pool.iter().take(n_styles) {
            let mut candidate = p.clone();
            t.apply(&mut candidate, &mut rng);
            if yali_minic::check(&candidate).is_ok() {
                p = candidate;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_specs_sample_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let spec = InputSpec::Ints {
            count: 5,
            lo: -3,
            hi: 9,
        };
        for _ in 0..50 {
            for v in spec.sample(&mut rng) {
                let Val::Int(i) = v else { panic!("non-int") };
                assert!((-3..=9).contains(&i));
            }
        }
    }

    #[test]
    fn array_specs_prefix_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = InputSpec::IntArray {
            max_len: 7,
            lo: 0,
            hi: 1,
        };
        for _ in 0..20 {
            let v = spec.sample(&mut rng);
            let Val::Int(n) = v[0] else { panic!() };
            assert_eq!(v.len(), 1 + n as usize);
        }
    }

    #[test]
    fn matrix_spec_is_square() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = InputSpec::IntMatrix {
            max_n: 4,
            lo: 0,
            hi: 5,
        };
        let v = spec.sample(&mut rng);
        let Val::Int(n) = v[0] else { panic!() };
        assert_eq!(v.len(), 1 + (n * n) as usize);
    }

    #[test]
    fn author_solutions_vary_by_seed() {
        let spec = ProblemSpec {
            name: "sum2",
            variants: &["void main() { int a = read_int(); int b = read_int(); print_int(a + b); }"],
            inputs: InputSpec::Ints {
                count: 2,
                lo: 0,
                hi: 9,
            },
        };
        let texts: std::collections::HashSet<String> = (0..12)
            .map(|s| yali_minic::print(&spec.author_solution(s)))
            .collect();
        assert!(texts.len() >= 4, "too little variation: {}", texts.len());
    }
}
