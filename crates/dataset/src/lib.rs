//! # yali-dataset
//!
//! Synthetic corpora for the yali reproduction of "A Game-Based Framework
//! to Compare Program Classifiers and Evaders" (CGO 2023):
//!
//! - a **POJ-104-like** suite of [`NUM_PROBLEMS`] programming problems
//!   ([`problems`]), each able to emit hundreds of distinct author
//!   solutions ([`solution`]) — the stand-in for Mou et al.'s dataset;
//! - a **MIRAI family** generator and size-matched benign kernels
//!   ([`malware`]) for RQ8;
//! - the 16 **Benchmarks Game** programs ([`benchgame`]) for RQ6.
//!
//! Every generated program is a checked MiniC [`Program`]; `lower` it with
//! `yali-minic` to obtain IR.
//!
//! # Example
//!
//! ```
//! use yali_dataset::{problems, solution};
//! let specs = problems();
//! assert_eq!(specs.len(), yali_dataset::NUM_PROBLEMS);
//! let p = solution(1, 7); // author #7's solution to problem 1 (gcd)
//! let m = yali_minic::lower(&p);
//! assert!(m.num_insts() > 0);
//! ```

#![warn(missing_docs)]

pub mod benchgame;
pub mod malware;
pub mod problems_arrays;
pub mod problems_dp;
pub mod problems_math;
pub mod problems_misc;
pub mod spec;

pub use benchgame::{Benchmark, BENCHMARKS};
pub use malware::{benign_program, mirai_variant};
pub use spec::{InputSpec, ProblemSpec};

use yali_minic::Program;

/// The number of problem classes (the paper's POJ-104 has 104).
pub const NUM_PROBLEMS: usize = 104;

/// All problem specifications, in stable class order.
pub fn problems() -> Vec<ProblemSpec> {
    let mut all = problems_math::specs();
    all.extend(problems_arrays::specs());
    all.extend(problems_dp::specs());
    all.extend(problems_misc::specs());
    all
}

/// One author's solution to `problem` (class index), derived
/// deterministically from `author_seed`.
///
/// # Panics
///
/// Panics if `problem >= NUM_PROBLEMS`.
pub fn solution(problem: usize, author_seed: u64) -> Program {
    let specs = problems();
    assert!(problem < specs.len(), "problem {problem} out of range");
    specs[problem].author_solution(author_seed.wrapping_mul(2654435761).wrapping_add(problem as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use yali_ir::interp::{run, ExecConfig, Outcome, Val};

    #[test]
    fn one_hundred_and_four_problems_with_unique_names() {
        let specs = problems();
        assert_eq!(specs.len(), NUM_PROBLEMS);
        let names: std::collections::HashSet<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), NUM_PROBLEMS, "duplicate problem names");
    }

    fn run_main(m: &yali_ir::Module, inputs: &[Val]) -> Result<Outcome, yali_ir::interp::ExecError> {
        let cfg = ExecConfig {
            fuel: 30_000_000,
            ..Default::default()
        };
        run(m, "main", &[], inputs, &cfg)
    }

    #[test]
    fn every_template_compiles_and_variants_agree_with_the_oracle() {
        // The Definition 2.1 requirement: all variants of a problem compute
        // the same reference function.
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        for (pid, spec) in problems().iter().enumerate() {
            let modules: Vec<yali_ir::Module> = (0..spec.variants.len())
                .map(|v| {
                    let p = spec.variant(v);
                    let m = yali_minic::lower(&p);
                    yali_ir::verify_module(&m)
                        .unwrap_or_else(|e| panic!("{} variant {v}: {e}", spec.name));
                    m
                })
                .collect();
            for trial in 0..3 {
                let inputs = spec.inputs.sample(&mut rng);
                let reference = run_main(&modules[0], &inputs).unwrap_or_else(|e| {
                    panic!("{} (#{pid}) variant 0 trial {trial}: {e} on {inputs:?}", spec.name)
                });
                for (v, m) in modules.iter().enumerate().skip(1) {
                    let out = run_main(m, &inputs).unwrap_or_else(|e| {
                        panic!("{} variant {v} trial {trial}: {e} on {inputs:?}", spec.name)
                    });
                    assert_eq!(
                        reference.output, out.output,
                        "{} variant {v} disagrees on {inputs:?}",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn author_solutions_compile_and_match_the_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let specs = problems();
        for pid in (0..NUM_PROBLEMS).step_by(13) {
            let spec = &specs[pid];
            let base = yali_minic::lower(&spec.variant(0));
            for author in 0..4 {
                let p = solution(pid, author);
                let m = yali_minic::lower(&p);
                yali_ir::verify_module(&m)
                    .unwrap_or_else(|e| panic!("{} author {author}: {e}", spec.name));
                let inputs = spec.inputs.sample(&mut rng);
                let a = run_main(&base, &inputs).unwrap();
                let b = run_main(&m, &inputs).unwrap_or_else(|e| {
                    panic!("{} author {author}: {e}\n{}", spec.name, yali_minic::print(&p))
                });
                assert_eq!(a.output, b.output, "{} author {author} on {inputs:?}", spec.name);
            }
        }
    }

    #[test]
    fn authors_produce_diverse_histograms() {
        // Within-class diversity is what makes classification nontrivial.
        let hists: Vec<Vec<f64>> = (0..8)
            .map(|a| yali_embed::histogram(&yali_minic::lower(&solution(1, a))))
            .collect();
        let distinct: std::collections::HashSet<String> =
            hists.iter().map(|h| format!("{h:?}")).collect();
        assert!(distinct.len() >= 3, "only {} distinct histograms", distinct.len());
    }

    #[test]
    fn solutions_are_deterministic() {
        let a = yali_minic::print(&solution(5, 99));
        let b = yali_minic::print(&solution(5, 99));
        assert_eq!(a, b);
    }
}
