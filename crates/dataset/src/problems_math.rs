//! Problems 0–25: arithmetic and number theory, in the spirit of the easy
//! tier of an online judge (the POJ-104 classes are of this kind).
//!
//! Every problem provides at least two hand-written solution variants; all
//! variants of a problem implement the same reference oracle.

use crate::spec::{InputSpec, ProblemSpec};

/// The math problem specifications.
pub fn specs() -> Vec<ProblemSpec> {
    vec![
        ProblemSpec {
            name: "sum_a_b",
            variants: &[
                "void main() { int a = read_int(); int b = read_int(); print_int(a + b); }",
                "int add(int x, int y) { return x + y; } void main() { int a = read_int(); int b = read_int(); print_int(add(a, b)); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: -1000, hi: 1000 },
        },
        ProblemSpec {
            name: "gcd",
            variants: &[
                "void main() { int a = read_int(); int b = read_int(); while (b != 0) { int t = a % b; a = b; b = t; } print_int(a); }",
                "int gcd(int a, int b) { if (b == 0) { return a; } return gcd(b, a % b); } void main() { print_int(gcd(read_int(), read_int())); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 1, hi: 5000 },
        },
        ProblemSpec {
            name: "lcm",
            variants: &[
                "void main() { int a = read_int(); int b = read_int(); int x = a; int y = b; while (y != 0) { int t = x % y; x = y; y = t; } print_int(a / x * b); }",
                "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; } void main() { int a = read_int(); int b = read_int(); print_int(a / gcd(a, b) * b); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 1, hi: 300 },
        },
        ProblemSpec {
            name: "factorial",
            variants: &[
                "void main() { int n = read_int(); int f = 1; for (int i = 2; i <= n; i++) { f = f * i; } print_int(f); }",
                "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } void main() { print_int(fact(read_int())); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 18 },
        },
        ProblemSpec {
            name: "fibonacci",
            variants: &[
                "void main() { int n = read_int(); int a = 0; int b = 1; for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; } print_int(a); }",
                "void main() { int n = read_int(); if (n == 0) { print_int(0); return; } int p = 0; int c = 1; int i = 1; while (i < n) { int t = p + c; p = c; c = t; i++; } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 40 },
        },
        ProblemSpec {
            name: "power",
            variants: &[
                "void main() { int b = read_int(); int e = read_int(); int r = 1; for (int i = 0; i < e; i++) { r = r * b; } print_int(r); }",
                "void main() { int b = read_int(); int e = read_int(); int r = 1; int base = b; while (e > 0) { if (e % 2 == 1) { r = r * base; } base = base * base; e = e / 2; } print_int(r); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 0, hi: 9 },
        },
        ProblemSpec {
            name: "is_prime",
            variants: &[
                "void main() { int n = read_int(); if (n < 2) { print_int(0); return; } for (int i = 2; i * i <= n; i++) { if (n % i == 0) { print_int(0); return; } } print_int(1); }",
                "void main() { int n = read_int(); int prime = 1; if (n < 2) { prime = 0; } int i = 2; while (i * i <= n) { if (n % i == 0) { prime = 0; break; } i++; } print_int(prime); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 10000 },
        },
        ProblemSpec {
            name: "sum_digits",
            variants: &[
                "void main() { int n = read_int(); int s = 0; while (n > 0) { s += n % 10; n = n / 10; } print_int(s); }",
                "int digits(int n) { if (n == 0) { return 0; } return n % 10 + digits(n / 10); } void main() { print_int(digits(read_int())); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 1000000 },
        },
        ProblemSpec {
            name: "reverse_number",
            variants: &[
                "void main() { int n = read_int(); int r = 0; while (n > 0) { r = r * 10 + n % 10; n = n / 10; } print_int(r); }",
                "void main() { int n = read_int(); int r = 0; for (; n > 0; n /= 10) { r = r * 10 + n % 10; } print_int(r); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 999999 },
        },
        ProblemSpec {
            name: "palindrome_number",
            variants: &[
                "void main() { int n = read_int(); int m = n; int r = 0; while (m > 0) { r = r * 10 + m % 10; m = m / 10; } if (r == n) { print_int(1); } else { print_int(0); } }",
                "int rev(int n) { int r = 0; while (n > 0) { r = r * 10 + n % 10; n /= 10; } return r; } void main() { int n = read_int(); print_int(rev(n) == n); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 99999 },
        },
        ProblemSpec {
            name: "collatz_steps",
            variants: &[
                "void main() { int n = read_int(); int steps = 0; while (n != 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } steps++; } print_int(steps); }",
                "void main() { int n = read_int(); int c = 0; while (n > 1) { if (n % 2 == 1) { n = 3 * n + 1; } else { n = n / 2; } c = c + 1; } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 500 },
        },
        ProblemSpec {
            name: "count_divisors",
            variants: &[
                "void main() { int n = read_int(); int c = 0; for (int i = 1; i <= n; i++) { if (n % i == 0) { c++; } } print_int(c); }",
                "void main() { int n = read_int(); int c = 0; int i = 1; while (i * i <= n) { if (n % i == 0) { c += 2; if (i * i == n) { c--; } } i++; } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 3000 },
        },
        ProblemSpec {
            name: "sum_divisors",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 1; i <= n; i++) { if (n % i == 0) { s += i; } } print_int(s); }",
                "void main() { int n = read_int(); int s = 0; int i = 1; do { if (n % i == 0) { s = s + i; } i++; } while (i <= n); print_int(s); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 2000 },
        },
        ProblemSpec {
            name: "perfect_number",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 1; i < n; i++) { if (n % i == 0) { s += i; } } print_int(s == n); }",
                "void main() { int n = read_int(); int s = 0; int i = 1; while (i < n) { if (n % i == 0) { s = s + i; } i = i + 1; } if (s == n) { print_int(1); } else { print_int(0); } }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 2000 },
        },
        ProblemSpec {
            name: "binomial",
            variants: &[
                "void main() { int n = read_int(); int k = read_int(); if (k > n) { print_int(0); return; } int r = 1; for (int i = 1; i <= k; i++) { r = r * (n - k + i) / i; } print_int(r); }",
                "int c(int n, int k) { if (k > n) { return 0; } if (k == 0 || k == n) { return 1; } return c(n - 1, k - 1) + c(n - 1, k); } void main() { int n = read_int(); int k = read_int(); print_int(c(n, k)); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 0, hi: 12 },
        },
        ProblemSpec {
            name: "digital_root",
            variants: &[
                "void main() { int n = read_int(); while (n >= 10) { int s = 0; int m = n; while (m > 0) { s += m % 10; m /= 10; } n = s; } print_int(n); }",
                "void main() { int n = read_int(); if (n == 0) { print_int(0); return; } int r = n % 9; if (r == 0) { print_int(9); } else { print_int(r); } }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 1000000 },
        },
        ProblemSpec {
            name: "isqrt",
            variants: &[
                "void main() { int n = read_int(); int r = 0; while ((r + 1) * (r + 1) <= n) { r++; } print_int(r); }",
                "void main() { int n = read_int(); int lo = 0; int hi = n + 1; while (hi - lo > 1) { int mid = (lo + hi) / 2; if (mid * mid <= n) { lo = mid; } else { hi = mid; } } print_int(lo); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 100000 },
        },
        ProblemSpec {
            name: "totient",
            variants: &[
                "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; } void main() { int n = read_int(); int c = 0; for (int i = 1; i <= n; i++) { if (gcd(i, n) == 1) { c++; } } print_int(c); }",
                "void main() { int n = read_int(); int result = n; int m = n; for (int p = 2; p * p <= m; p++) { if (m % p == 0) { while (m % p == 0) { m /= p; } result = result - result / p; } } if (m > 1) { result = result - result / m; } print_int(result); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 500 },
        },
        ProblemSpec {
            name: "modpow",
            variants: &[
                "void main() { int b = read_int(); int e = read_int(); int m = read_int(); int r = 1; b = b % m; while (e > 0) { if (e % 2 == 1) { r = r * b % m; } b = b * b % m; e /= 2; } print_int(r); }",
                "void main() { int b = read_int(); int e = read_int(); int m = read_int(); int r = 1; for (int i = 0; i < e; i++) { r = r * b % m; } print_int(r); }",
            ],
            inputs: InputSpec::Ints { count: 3, lo: 1, hi: 40 },
        },
        ProblemSpec {
            name: "sum_to_n",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 1; i <= n; i++) { s += i; } print_int(s); }",
                "void main() { int n = read_int(); print_int(n * (n + 1) / 2); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 10000 },
        },
        ProblemSpec {
            name: "sum_of_squares",
            variants: &[
                "void main() { int n = read_int(); int s = 0; for (int i = 1; i <= n; i++) { s += i * i; } print_int(s); }",
                "void main() { int n = read_int(); print_int(n * (n + 1) * (2 * n + 1) / 6); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 1000 },
        },
        ProblemSpec {
            name: "count_primes_below",
            variants: &[
                "void main() { int n = read_int(); int c = 0; for (int k = 2; k < n; k++) { int p = 1; for (int i = 2; i * i <= k; i++) { if (k % i == 0) { p = 0; break; } } c += p; } print_int(c); }",
                "void main() { int n = read_int(); if (n <= 2) { print_int(0); return; } int sieve[1000]; for (int i = 0; i < n; i++) { sieve[i] = 1; } int c = 0; for (int i = 2; i < n; i++) { if (sieve[i] == 1) { c++; for (int j = i + i; j < n; j += i) { sieve[j] = 0; } } } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 900 },
        },
        ProblemSpec {
            name: "nth_prime",
            variants: &[
                "void main() { int n = read_int(); int found = 0; int k = 1; while (found < n) { k++; int p = 1; for (int i = 2; i * i <= k; i++) { if (k % i == 0) { p = 0; break; } } found += p; } print_int(k); }",
                "int isp(int k) { if (k < 2) { return 0; } for (int i = 2; i * i <= k; i++) { if (k % i == 0) { return 0; } } return 1; } void main() { int n = read_int(); int k = 1; int c = 0; while (c < n) { k++; c += isp(k); } print_int(k); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 1, hi: 60 },
        },
        ProblemSpec {
            name: "max_of_three",
            variants: &[
                "void main() { int a = read_int(); int b = read_int(); int c = read_int(); int m = a; if (b > m) { m = b; } if (c > m) { m = c; } print_int(m); }",
                "int max2(int x, int y) { if (x > y) { return x; } return y; } void main() { int a = read_int(); int b = read_int(); int c = read_int(); print_int(max2(max2(a, b), c)); }",
            ],
            inputs: InputSpec::Ints { count: 3, lo: -1000, hi: 1000 },
        },
        ProblemSpec {
            name: "tribonacci",
            variants: &[
                "void main() { int n = read_int(); int a = 0; int b = 1; int c = 1; for (int i = 0; i < n; i++) { int t = a + b + c; a = b; b = c; c = t; } print_int(a); }",
                "void main() { int n = read_int(); int v[60]; v[0] = 0; v[1] = 1; v[2] = 1; for (int i = 3; i < n + 3; i++) { v[i] = v[i - 1] + v[i - 2] + v[i - 3]; } print_int(v[n]); }",
            ],
            inputs: InputSpec::Ints { count: 1, lo: 0, hi: 30 },
        },
        ProblemSpec {
            name: "leap_years_between",
            variants: &[
                "void main() { int a = read_int(); int b = read_int(); int c = 0; for (int y = a; y <= b; y++) { if (y % 4 == 0 && y % 100 != 0 || y % 400 == 0) { c++; } } print_int(c); }",
                "int leap(int y) { if (y % 400 == 0) { return 1; } if (y % 100 == 0) { return 0; } if (y % 4 == 0) { return 1; } return 0; } void main() { int a = read_int(); int b = read_int(); int c = 0; int y = a; while (y <= b) { c += leap(y); y++; } print_int(c); }",
            ],
            inputs: InputSpec::Ints { count: 2, lo: 1900, hi: 2100 },
        },
    ]
}
