//! Figure 5: comparison of the nine program embeddings in Game 0, using
//! Zhang et al.'s networks (dgcnn on graphs, cnn on arrays).
//!
//! Paper reference: cfg_compact best at 85.36%; cdfg_compact / ir2vec /
//! milepost / histogram statistically tied at 81–82%.

use yali_bench::{banner, mean, pct, print_table, stddev, Scale};
use yali_core::{play, ClassifierSpec, Corpus, GameConfig};
use yali_embed::EmbeddingKind;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 5", "program embeddings in Game0 (dgcnn/cnn)", &scale);
    let paper: &[(&str, f64)] = &[
        ("cfg", 0.74),
        ("cfg_compact", 0.8536),
        ("cdfg", 0.73),
        ("cdfg_compact", 0.815),
        ("cdfg_plus", 0.66),
        ("programl", 0.80),
        ("ir2vec", 0.815),
        ("milepost", 0.815),
        ("histogram", 0.815),
    ];
    let mut rows = Vec::new();
    for kind in EmbeddingKind::ALL {
        let mut accs = Vec::new();
        for round in 0..scale.rounds {
            let corpus = Corpus::poj(scale.embed_classes, scale.per_class, 100 + round as u64);
            let mut spec = ClassifierSpec::zhang_net(kind);
            // Keep the graph network affordable at small scale.
            spec.dgcnn.epochs = 12;
            spec.dgcnn.k = 10;
            spec.train.epochs = 25;
            let cfg = GameConfig::game0(spec, 500 + round as u64);
            accs.push(play(&corpus, &cfg).accuracy);
        }
        let p = paper
            .iter()
            .find(|(n, _)| *n == kind.name())
            .map(|(_, v)| pct(*v))
            .unwrap_or_default();
        rows.push(vec![
            kind.name().to_string(),
            pct(mean(&accs)),
            format!("±{:.1}", stddev(&accs) * 100.0),
            p,
        ]);
        eprintln!("  {} done: {}", kind.name(), pct(mean(&accs)));
    }
    print_table(
        "Figure 5 — embeddings in Game0",
        &["embedding", "accuracy", "std", "paper≈"],
        &rows,
    );
    yali_bench::emit_runstats();
}
