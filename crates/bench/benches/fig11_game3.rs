//! Figure 11: Game 3 — the evader obfuscates, the classifier normalizes
//! every challenge with `-O3` after training on optimized code.
//!
//! Paper: optimization reverts Zhang-style source obfuscation entirely,
//! but bcf survives (opaque predicates do not fold) and fla interacts
//! badly with optimization (the instruction mix changes further).

use yali_bench::{banner, run_evader_model_grid, Scale};
use yali_core::Game;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 11", "Game3: evaders vs -O3 normalization (histogram)", &scale);
    run_evader_model_grid(Game::Game3, &scale);
    yali_bench::emit_runstats();
}
