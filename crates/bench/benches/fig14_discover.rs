//! Figure 14: detecting the obfuscator (RQ7). Ten transformer classes;
//! paper: ~25% hit rate on datasets 1, 2 and 4 (chance is 10%), and a
//! spuriously high rate on dataset 3, where each transformer has its own
//! programming problem.

use yali_bench::{banner, mean, pct, print_table, Scale};
use yali_core::{discover_transformer, DiscoverDataset};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 14", "identify the transformer (10 classes)", &scale);
    let paper = [0.25, 0.25, 0.95, 0.25];
    let mut rows = Vec::new();
    for (d, p) in DiscoverDataset::ALL.into_iter().zip(paper) {
        let mut accs = Vec::new();
        for round in 0..scale.rounds {
            let r = discover_transformer(d, scale.discover_per_class, 0.8, 10 + round as u64);
            accs.push(r.accuracy);
        }
        rows.push(vec![
            d.name().to_string(),
            pct(mean(&accs)),
            pct(p),
            pct(0.10),
        ]);
        eprintln!("  {} done", d.name());
    }
    print_table(
        "Figure 14 — obfuscator discovery",
        &["dataset", "accuracy", "paper≈", "chance"],
        &rows,
    );
    yali_bench::emit_runstats();
}
