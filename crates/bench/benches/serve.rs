//! Serving throughput and tail latency: the `yali-serve` daemon under a
//! closed-loop fleet of single-query clients, timed in two batching
//! configurations —
//!
//! * `serve/serial` — one-request-per-dispatch (`max_batch = 1`): every
//!   row pays the per-`predict` price, the pre-batching behavior a naive
//!   daemon would have;
//! * `serve/batched` — the real policy: coalesce concurrent requests into
//!   `INFER_CHUNK`-row batches on a 2 ms deadline and dispatch through
//!   `predict_batch`.
//!
//! The fleet is closed-loop (each worker holds one connection and one
//! outstanding request), so throughput is limited by the server's service
//! rate, not by an open-loop arrival schedule — exactly the regime where
//! coalescing pays. Every verdict is checked against a locally trained
//! oracle during the measured run (tenant training is deterministic in
//! the seed), so the bench doubles as an end-to-end bit-identity check.
//!
//! Per-request latencies are recorded client-side; the report carries
//! p50/p95/p99 and sustained QPS per mode, and `speedup_vs_serial` is the
//! QPS ratio (gated at >= 2x by `scripts/bench.sh`, and run-over-run by
//! `yali-prof diff`'s p99 ceiling and QPS floor). Writes
//! `BENCH_serve.json`, `RUNSTATS_serve.json`, and `TRACE_serve.jsonl` at
//! the repo root.
//!
//! Since the daemon became always-instrumented (binding enables the
//! `yali-obs` registry and arms the flight recorder), the report also
//! carries a `live` section: the daemon's own windowed quantiles and
//! rolling QPS sampled over the measured round via the `metrics` op, and
//! the flight recorder's measured overhead — paired recorder-off/on
//! rounds on the same server, median wall-clock ratio of five pairs
//! (whole-run QPS swings a few percent run-to-run, so a single unpaired
//! comparison would be noise). `scripts/bench.sh` gates the overhead at
//! <= 5% and cross-checks the windowed p99 against the client-observed
//! percentile envelope.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use yali_ml::ModelKind;
use yali_serve::{train_tenants, BatcherConfig, Client, Metrics, Reply, Server};

/// Heavy tenants: the two dense-forward models whose batched GEMM path
/// is the win being served (the single-core machine gains nothing from
/// pool parallelism, so the QPS ratio below is pure kernel amortization).
const MODELS: [ModelKind; 2] = [ModelKind::Mlp, ModelKind::Cnn];
const CLASSES: usize = 8;
const PER_CLASS: usize = 12;
const SEED: u64 = 77;

/// Enough closed-loop workers that each model lane can fill an
/// `INFER_CHUNK` batch by size, not only by deadline.
const N_CLIENTS: usize = 64;
const WARMUP_PER_CLIENT: usize = 4;
const REQUESTS_PER_CLIENT: usize = 40;
/// Requests per client in each recorder-overhead pairing round (shorter
/// than the measured modes: ten of these run back-to-back).
const OVERHEAD_REQUESTS: usize = 16;
/// Base seed for the traced pass's per-worker trace contexts (worker `w`
/// uses `TRACE_SEED + (w << 32)`, keeping every connection's trace ids
/// disjoint). Deterministic, so two runs of the bench trace identically.
const TRACE_SEED: u64 = 0x7ace;

#[derive(serde::Serialize)]
struct ModeOut {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
    qps: f64,
    speedup_vs_serial: f64,
}

/// The daemon's own view of the measured round: windowed quantiles and
/// rolling QPS from the `metrics` op (server-side enqueue-to-reply
/// latencies, so they sit below the client-observed numbers), recorder
/// occupancy, and the measured recorder overhead. Empty-window quantiles
/// serialize as 0 — `yali-prof diff` skips zeros rather than gating on
/// them.
#[derive(serde::Serialize)]
struct LiveOut {
    window_count: u64,
    windowed_p50_ns: u64,
    windowed_p95_ns: u64,
    windowed_p99_ns: u64,
    rolling_qps: f64,
    queue_depth: u64,
    recorder_events: u64,
    recorder_dropped: u64,
    /// Median wall-clock cost of the armed flight recorder, in percent
    /// (paired off/on rounds; can be slightly negative from run noise).
    recorder_overhead_pct: f64,
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    workload: String,
    n_clients: usize,
    requests_per_client: usize,
    models: Vec<String>,
    modes: Vec<ModeOut>,
    /// The headline gate: batched QPS over serial QPS (>= 2.0 required
    /// by scripts/bench.sh).
    qps_serial_to_batched: f64,
    /// Batched p99 over serial p99 (< 1 means batching also improved the
    /// tail under saturation, because queue waits shrink when rows are
    /// retired 32 at a time).
    p99_batched_over_serial: f64,
    /// The daemon's live telemetry, sampled over the batched round.
    live: LiveOut,
}

/// Nearest-rank percentile over an ascending-sorted latency vector.
fn percentile(sorted: &[u64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((n as f64 * p / 100.0).ceil() as usize).clamp(1, n);
    sorted[rank - 1] as f64
}

/// The query mix: every worker walks the same pool, offset by its index,
/// alternating the two model lanes across workers.
fn query_pool() -> Vec<Vec<f64>> {
    let corpus = yali_core::Corpus::poj(CLASSES, PER_CLASS, SEED);
    let all: Vec<&yali_core::Sample> = corpus.samples.iter().collect();
    yali_core::transform_all(&all, yali_core::Transformer::None, 3)
        .iter()
        .map(yali_embed::histogram)
        .collect()
}

/// Runs one closed-loop round against `addr`: `n_clients` workers, each
/// with one connection and one outstanding request, `requests` measured
/// calls each after a short unmeasured warmup. Returns the ascending
/// per-request latencies and the fleet's wall time.
fn run_round(
    addr: &str,
    queries: &Arc<Vec<Vec<f64>>>,
    want: &Arc<Vec<Vec<u32>>>,
    n_clients: usize,
    requests: usize,
    trace_seed: Option<u64>,
) -> (Vec<u64>, u64) {
    // Workers connect and warm up first; the barrier then releases the
    // measured phase on every thread at once so wall time is honest.
    let barrier = Arc::new(Barrier::new(n_clients + 1));
    let workers: Vec<_> = (0..n_clients)
        .map(|w| {
            let addr = addr.to_string();
            let queries = Arc::clone(queries);
            let want = Arc::clone(want);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                if let Some(seed) = trace_seed {
                    // Per-worker seed: every connection restarts its
                    // request ids at 1, so a shared seed would collide
                    // trace ids across workers.
                    client.set_tracing(seed.wrapping_add((w as u64) << 32));
                }
                let model = w % MODELS.len();
                let step = |client: &mut Client, i: usize, check: bool| -> u64 {
                    let q = (w + i * 7) % queries.len();
                    let t0 = Instant::now();
                    let reply = client
                        .classify(model as u8, queries[q].clone())
                        .expect("classify");
                    let dt = t0.elapsed().as_nanos() as u64;
                    match reply {
                        Reply::Label(got) => {
                            if check {
                                assert_eq!(
                                    got, want[model][q],
                                    "served verdict diverged from direct predict \
                                     (worker {w}, model {model}, query {q})"
                                );
                            }
                        }
                        other => panic!("worker {w}: unexpected reply {other:?}"),
                    }
                    dt
                };
                for i in 0..WARMUP_PER_CLIENT {
                    step(&mut client, i, false);
                }
                barrier.wait();
                (0..requests).map(|i| step(&mut client, i, true)).collect::<Vec<u64>>()
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker panicked"))
        .collect();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    latencies.sort_unstable();
    (latencies, wall_ns)
}

/// Starts a server with `cfg` on an ephemeral port; returns its address
/// and run-thread handle (joined after `shutdown`).
fn start_server(cfg: BatcherConfig) -> (String, std::thread::JoinHandle<()>) {
    let tenants = train_tenants(&MODELS, CLASSES, PER_CLASS, SEED);
    let server = Server::bind("127.0.0.1:0", tenants, cfg).expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn shut_down(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    assert_eq!(client.shutdown().expect("shutdown"), Reply::Ok);
    handle.join().expect("server run thread");
}

fn main() {
    let queries = Arc::new(query_pool());

    // The oracle: the same tenants trained locally (training is
    // deterministic in the seed, so the servers below hold bit-identical
    // models) — every served verdict is checked against a direct
    // `predict` on these.
    let oracle = train_tenants(&MODELS, CLASSES, PER_CLASS, SEED);
    let want: Arc<Vec<Vec<u32>>> = Arc::new(
        oracle
            .models
            .iter()
            .map(|(_, clf)| queries.iter().map(|q| clf.predict(q) as u32).collect())
            .collect(),
    );
    drop(oracle);

    let serial_cfg = BatcherConfig {
        max_batch: 1,
        deadline_ns: 1,
        queue_cap: 4096,
    };
    let batched_cfg = BatcherConfig {
        max_batch: yali_ml::INFER_CHUNK,
        deadline_ns: 2_000_000,
        queue_cap: 4096,
    };

    // Mode 1: one-request-per-dispatch serial serving (the baseline).
    let (addr, handle) = start_server(serial_cfg);
    let (serial_lat, serial_wall) =
        run_round(&addr, &queries, &want, N_CLIENTS, REQUESTS_PER_CLIENT, None);
    shut_down(&addr, handle);

    // Mode 2: deadline batching (the product). The server stays up after
    // the measured round for the instrumented and traced passes, so the
    // RUNSTATS/TRACE capture the same daemon the numbers came from.
    let (addr, handle) = start_server(batched_cfg);
    let (batched_lat, batched_wall) =
        run_round(&addr, &queries, &want, N_CLIENTS, REQUESTS_PER_CLIENT, None);

    // Live snapshot, taken immediately so the measured round is still
    // inside the daemon's 10 s sliding window.
    let live_m: Metrics = {
        let mut c = Client::connect(&addr).expect("connect for metrics");
        match c.metrics().expect("metrics") {
            Reply::Metrics(m) => m,
            other => panic!("unexpected metrics reply {other:?}"),
        }
    };

    // Recorder overhead: five paired recorder-off/on rounds on the same
    // server; the median of the per-pair wall ratios cancels the
    // run-to-run drift a single comparison would drown in.
    let mut ratios: Vec<f64> = (0..5)
        .map(|_| {
            yali_obs::recorder::set_recorder(None);
            let (_, off_wall) = run_round(&addr, &queries, &want, N_CLIENTS, OVERHEAD_REQUESTS, None);
            yali_obs::recorder::set_recorder(Some(yali_obs::recorder::DEFAULT_RECORDER_CAP));
            let (_, on_wall) = run_round(&addr, &queries, &want, N_CLIENTS, OVERHEAD_REQUESTS, None);
            on_wall as f64 / off_wall as f64
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let recorder_overhead_pct = (ratios[2] - 1.0) * 100.0;

    // Instrumented pass: a short extra round with observability on, for
    // the companion run report (batch-size histogram, queue waits, batch
    // fill latency, dispatch phase).
    yali_obs::set_enabled(true);
    let _ = run_round(&addr, &queries, &want, N_CLIENTS, 8, None);
    let runstats_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS_serve.json");
    yali_core::RunReport::collect()
        .write(runstats_path)
        .expect("write RUNSTATS_serve.json");
    yali_obs::set_enabled(false);

    // Traced pass: a separate short round for `yali-prof` (separate from
    // the report pass so the JSONL sink's writes never taint the RUNSTATS
    // phase timings).
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_serve.jsonl");
    yali_obs::set_trace_path(Some(trace_path));
    yali_obs::set_enabled(true);
    {
        let _pass = yali_obs::span!("bench.serve.pass");
        let _ = run_round(&addr, &queries, &want, N_CLIENTS, 8, Some(TRACE_SEED));
    }
    yali_obs::set_enabled(false);
    // Quiesce before detaching the sink: the dispatcher is a single
    // sequential thread, so a reply to one more (untraced — obs is off,
    // so its span guard is inert) request proves the last traced batch's
    // `serve.dispatch` guard dropped and its close event reached the
    // file. Detaching straight after the traced round would race that
    // drop and leave the capture unbalanced for the strict parser.
    {
        let mut client = Client::connect(&addr).expect("quiesce connect");
        let _ = client
            .classify(0, queries[0].clone())
            .expect("quiesce classify");
    }
    yali_obs::set_trace_path(None);

    shut_down(&addr, handle);

    let total = (N_CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let mode = |name: &str, lat: &[u64], wall_ns: u64, qps_serial: f64| -> ModeOut {
        let qps = total / (wall_ns as f64 / 1e9);
        ModeOut {
            name: name.to_string(),
            mean_ns: lat.iter().sum::<u64>() as f64 / lat.len() as f64,
            median_ns: percentile(lat, 50.0),
            min_ns: lat.first().copied().unwrap_or(0) as f64,
            p50_ns: percentile(lat, 50.0),
            p95_ns: percentile(lat, 95.0),
            p99_ns: percentile(lat, 99.0),
            qps,
            speedup_vs_serial: if qps_serial > 0.0 { qps / qps_serial } else { 1.0 },
        }
    };
    let serial = mode("serve/serial", &serial_lat, serial_wall, 0.0);
    let qps_serial = serial.qps;
    let serial = ModeOut {
        speedup_vs_serial: 1.0,
        ..serial
    };
    let batched = mode("serve/batched", &batched_lat, batched_wall, qps_serial);

    let report = Report {
        description: "classification-as-a-service: a closed-loop fleet of single-query \
                      clients against the yali-serve daemon, one-request-per-dispatch \
                      (max_batch=1) vs deadline batching (INFER_CHUNK rows or 2 ms); \
                      speedup_vs_serial is the sustained-QPS ratio and every served \
                      verdict is checked bit-identical to direct predict"
            .to_string(),
        workload: format!(
            "{} classes x {} per class, models {}, {} workers x {} requests per mode",
            CLASSES,
            PER_CLASS,
            MODELS.map(|m| m.name()).join(","),
            N_CLIENTS,
            REQUESTS_PER_CLIENT
        ),
        n_clients: N_CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        models: MODELS.iter().map(|m| m.name().to_string()).collect(),
        qps_serial_to_batched: batched.qps / serial.qps,
        p99_batched_over_serial: batched.p99_ns / serial.p99_ns,
        live: LiveOut {
            window_count: live_m.window_count,
            windowed_p50_ns: live_m.p50_ns.unwrap_or(0),
            windowed_p95_ns: live_m.p95_ns.unwrap_or(0),
            windowed_p99_ns: live_m.p99_ns.unwrap_or(0),
            rolling_qps: live_m.qps,
            queue_depth: live_m.queue_depth,
            recorder_events: live_m.recorder_events,
            recorder_dropped: live_m.recorder_dropped,
            recorder_overhead_pct,
        },
        modes: vec![serial, batched],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json + "\n").expect("write BENCH_serve.json");
    println!(
        "serve serial -> batched: {:.2}x QPS ({:.0} -> {:.0}), p99 {:.2}ms -> {:.2}ms \
         (report at {})",
        report.qps_serial_to_batched,
        report.modes[0].qps,
        report.modes[1].qps,
        report.modes[0].p99_ns / 1e6,
        report.modes[1].p99_ns / 1e6,
        path
    );
    println!(
        "serve live: windowed p99 {:.2}ms over {} rows, rolling {:.0} qps, recorder {} events \
         ({} dropped), overhead {:.2}%",
        report.live.windowed_p99_ns as f64 / 1e6,
        report.live.window_count,
        report.live.rolling_qps,
        report.live.recorder_events,
        report.live.recorder_dropped,
        report.live.recorder_overhead_pct
    );
}
