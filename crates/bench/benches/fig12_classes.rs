//! Figure 12: Game-0 accuracy and F1 of the histogram classifiers as the
//! number of classes grows (paper: 4, 8, 16, 32, 64 — accuracy decays
//! slowly; rf still ~80% at 64 classes; accuracy == F1 on balanced sets).

use yali_bench::{banner, mean, pct, print_table, Scale};
use yali_core::{play, ClassifierSpec, Corpus, GameConfig};
use yali_ml::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 12", "accuracy and F1 vs number of classes", &scale);
    let class_counts: Vec<usize> = [4usize, 8, 16, 32, 64]
        .into_iter()
        .filter(|&c| c <= scale.classes.max(16))
        .collect();
    let mut rows = Vec::new();
    for &m in &[ModelKind::Rf, ModelKind::Knn, ModelKind::Lr] {
        for &c in &class_counts {
            let mut accs = Vec::new();
            let mut f1s = Vec::new();
            for round in 0..scale.rounds {
                let corpus = Corpus::poj(c, scale.per_class, 77 + round as u64);
                let cfg = GameConfig::game0(ClassifierSpec::histogram(m), round as u64);
                let r = play(&corpus, &cfg);
                accs.push(r.accuracy);
                f1s.push(r.f1);
            }
            rows.push(vec![
                m.name().to_string(),
                c.to_string(),
                pct(mean(&accs)),
                pct(mean(&f1s)),
                pct(1.0 / c as f64),
            ]);
        }
        eprintln!("  {} done", m.name());
    }
    print_table(
        "Figure 12 — classes sweep",
        &["model", "classes", "accuracy", "macro F1", "chance"],
        &rows,
    );
    yali_bench::emit_runstats();
}
