//! Criterion micro-benchmarks for the pipeline's components, plus
//! ablations for the design choices DESIGN.md calls out (forest size,
//! bcf density, substitution probability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yali_embed::EmbeddingKind;
use yali_ml::{ForestConfig, RandomForest};

const PROGRAM: &str = r#"
    int helper(int x) { return x * 3 + 1; }
    int work(int n) {
        int s = 0;
        int a[40];
        for (int i = 0; i < 40; i++) { a[i] = helper(i) % 17; }
        for (int i = 0; i < 40; i++) {
            for (int j = i + 1; j < 40; j++) {
                if (a[j] < a[i]) { int t = a[i]; a[i] = a[j]; a[j] = t; }
            }
        }
        for (int i = 0; i < n && i < 40; i++) { s += a[i]; }
        return s;
    }
    void main() { print_int(work(read_int())); }
"#;

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("minic_parse_check", |b| {
        b.iter(|| {
            let p = yali_minic::parse(std::hint::black_box(PROGRAM)).unwrap();
            yali_minic::check(&p).unwrap();
            p
        })
    });
    let p = yali_minic::parse(PROGRAM).unwrap();
    c.bench_function("minic_lower", |b| b.iter(|| yali_minic::lower(std::hint::black_box(&p))));
}

fn bench_opt(c: &mut Criterion) {
    let m = yali_minic::compile(PROGRAM).unwrap();
    let mut group = c.benchmark_group("optimize");
    for level in yali_opt::OptLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &lvl| {
            b.iter(|| yali_opt::optimized(std::hint::black_box(&m), lvl))
        });
    }
    group.finish();
}

fn bench_obf(c: &mut Criterion) {
    let m = yali_minic::compile(PROGRAM).unwrap();
    let mut group = c.benchmark_group("obfuscate");
    for pass in yali_obf::IrObf::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(pass), &pass, |b, &p| {
            b.iter(|| {
                let mut copy = m.clone();
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                p.apply(&mut copy, &mut rng);
                copy
            })
        });
    }
    group.finish();
}

fn bench_embeddings(c: &mut Criterion) {
    let m = yali_minic::compile(PROGRAM).unwrap();
    let mut group = c.benchmark_group("embed");
    for kind in EmbeddingKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &k| {
            b.iter(|| k.embed(std::hint::black_box(&m)))
        });
    }
    group.finish();
}

/// Ablation: forest size vs fit cost (accuracy saturates long before the
/// cost does, which is why the harness defaults to 40 trees).
fn bench_forest_ablation(c: &mut Criterion) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for cls in 0..4usize {
        for k in 0..30usize {
            let j = (k as f64 * 0.37).fract();
            x.push(vec![cls as f64 * 3.0 + j, (cls % 2) as f64 - j]);
            y.push(cls);
        }
    }
    let mut group = c.benchmark_group("rf_trees_ablation");
    for n_trees in [5usize, 20, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, &n| {
            b.iter(|| {
                RandomForest::fit(
                    &x,
                    &y,
                    4,
                    &ForestConfig {
                        n_trees: n,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

/// The observability crate's advertised disabled-path cost: one relaxed
/// load per `count!` site, one relaxed load plus an inert guard per
/// `span!`. Both should land within a few nanoseconds of the empty loop.
fn bench_obs_disabled(c: &mut Criterion) {
    yali_obs::set_enabled(false);
    c.bench_function("obs/count_disabled", |b| {
        b.iter(|| {
            yali_obs::count!("bench.obs.count", 1);
            std::hint::black_box(0u64)
        })
    });
    c.bench_function("obs/span_disabled", |b| {
        b.iter(|| {
            let _g = yali_obs::span!("bench.obs.span");
            std::hint::black_box(0u64)
        })
    });
}

fn bench_interp(c: &mut Criterion) {
    use yali_ir::interp::{run, ExecConfig, Val};
    let m = yali_minic::compile(PROGRAM).unwrap();
    let m3 = yali_opt::optimized(&m, yali_opt::OptLevel::O3);
    c.bench_function("interp_O0", |b| {
        b.iter(|| run(&m, "main", &[], &[Val::Int(30)], &ExecConfig::default()).unwrap())
    });
    c.bench_function("interp_O3", |b| {
        b.iter(|| run(&m3, "main", &[], &[Val::Int(30)], &ExecConfig::default()).unwrap())
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_frontend, bench_opt, bench_obf, bench_embeddings, bench_forest_ablation, bench_obs_disabled, bench_interp
);
criterion_main!(micro);
