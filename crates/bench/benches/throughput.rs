//! Engine throughput: the Scale::SMALL full-game sweep (4 games × 3
//! models × the O-LLVM evader) timed in three engine configurations —
//! serial with caching disabled (`YALI_CACHE=0`, the pre-engine
//! behavior), parallel with cold caches, and parallel with warm caches
//! (the steady state of a grid sweep, where every repeated
//! transform/embedding is answered by the content-addressed caches).
//!
//! Writes `BENCH_engine.json` at the repo root with per-mode timings,
//! speedups over the serial baseline, and the final cache statistics.

use std::time::Duration;

use criterion::Criterion;
use yali_core::{
    engine, play, transform_all, ClassifierSpec, Corpus, Game, GameConfig, Sample, Scale,
    Transformer,
};
use yali_embed::EmbeddingKind;
use yali_ml::ModelKind;

const MODELS: [ModelKind; 3] = [ModelKind::Knn, ModelKind::Svm, ModelKind::Lr];
const EVADER: Transformer = Transformer::Ir(yali_obf::IrObf::Ollvm);

/// Plays every cell of the sweep grid and returns the summed accuracy
/// (consumed via black_box so nothing is optimized away). Corpora are
/// built once outside the timed region: the benchmark measures the
/// engine's transform/embed/fit pipeline, not the synthetic dataset
/// generator.
fn sweep(corpora: &[Corpus]) -> f64 {
    let mut total = 0.0;
    for game in Game::ALL {
        for model in MODELS {
            for (round, corpus) in corpora.iter().enumerate() {
                let cfg = GameConfig::game0(ClassifierSpec::histogram(model), round as u64)
                    .with_game(game, EVADER);
                total += play(corpus, &cfg).accuracy;
            }
        }
    }
    total
}

/// Embeds every module of the corpus with ir2vec (the most expensive
/// vector embedding).
fn embed_all(modules: &[yali_ir::Module]) -> usize {
    engine::par_map(modules, |_, m| engine::embed_cached(m, EmbeddingKind::Ir2Vec)).len()
}

#[derive(serde::Serialize)]
struct ModeOut {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct CacheOut {
    hits: u64,
    misses: u64,
    inserts: u64,
    entries: usize,
    hit_rate: f64,
}

impl From<engine::CacheStats> for CacheOut {
    fn from(s: engine::CacheStats) -> CacheOut {
        CacheOut {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            entries: s.entries,
            hit_rate: s.hit_rate(),
        }
    }
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    workload: String,
    threads_parallel: usize,
    modes: Vec<ModeOut>,
    speedup_serial_to_parallel_cached: f64,
    obs_overhead_pct: f64,
    embed_cache: CacheOut,
    transform_cache: CacheOut,
}

fn main() {
    let scale = Scale::SMALL;
    let corpora: Vec<Corpus> = (0..scale.rounds)
        .map(|r| Corpus::poj(scale.classes, scale.per_class, 60 + r as u64))
        .collect();
    let parallel_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let refs: Vec<&Sample> = corpora[0].samples.iter().collect();
    let modules = transform_all(&refs, Transformer::None, 0);

    // The pre-engine configuration: one thread, no caching at all.
    std::env::set_var("YALI_THREADS", "1");
    std::env::set_var("YALI_CACHE", "0");
    c.bench_function("embed/serial", |b| b.iter(|| embed_all(&modules)));
    c.bench_function("sweep/serial", |b| b.iter(|| sweep(&corpora)));
    std::env::remove_var("YALI_CACHE");

    std::env::set_var("YALI_THREADS", parallel_threads.to_string());
    c.bench_function("embed/parallel", |b| {
        b.iter(|| {
            engine::clear_caches();
            embed_all(&modules)
        })
    });
    c.bench_function("sweep/parallel", |b| {
        b.iter(|| {
            engine::clear_caches();
            sweep(&corpora)
        })
    });

    engine::clear_caches();
    c.bench_function("embed/parallel_cached", |b| b.iter(|| embed_all(&modules)));
    engine::clear_caches();
    c.bench_function("sweep/parallel_cached", |b| b.iter(|| sweep(&corpora)));

    // The same warm-cache sweep with observability live, reported as its
    // own mode. (The 5% `obs_overhead_pct` gate is computed from the
    // interleaved per-cell paired measurement below, not from these two
    // modes — they are timed too far apart to subtract cleanly on a
    // noisy box.)
    yali_obs::set_enabled(true);
    c.bench_function("sweep/obs_on", |b| b.iter(|| sweep(&corpora)));
    let runstats_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS_engine.json");
    yali_core::RunReport::collect()
        .write(runstats_path)
        .expect("write RUNSTATS_engine.json");
    yali_obs::set_enabled(false);

    // The overhead gate's own measurement. Criterion times the obs-off
    // and obs-on modes tens of seconds apart, which on a small shared box
    // lets clock drift (thermal, scheduler) swamp the sub-1% cost being
    // gated — run-to-run the mode-vs-mode delta swings well past ±10% in
    // both directions, and even whole-sweep interleaving (90 ms units)
    // left ±6% swings because noise here arrives in multi-100ms spikes.
    // So interleave at the finest natural unit instead: each grid cell
    // (one `play()`, a few ms) is timed obs-off and obs-on back to back,
    // inside the same noise regime, with the order alternating per round.
    // Noise is strictly additive (preemption, cache pollution), so each
    // cell's per-mode *minimum* over the rounds is its least-contaminated
    // cost estimate, and the gate takes the median of the per-cell
    // minima ratios: a real obs regression lifts every cell's ratio
    // (the instrumentation is spread across the whole pipeline), while
    // one cell whose minimum never saw a quiet window can't move the
    // median the way it moved a duration-weighted sum.
    let cells: Vec<(Game, ModelKind, usize)> = Game::ALL
        .into_iter()
        .flat_map(|g| MODELS.into_iter().map(move |m| (g, m)))
        .flat_map(|(g, m)| (0..corpora.len()).map(move |r| (g, m, r)))
        .collect();
    let time_cell = |&(game, model, round): &(Game, ModelKind, usize), on: bool| {
        let cfg = GameConfig::game0(ClassifierSpec::histogram(model), round as u64)
            .with_game(game, EVADER);
        yali_obs::set_enabled(on);
        let t = std::time::Instant::now();
        std::hint::black_box(play(&corpora[round], &cfg));
        let ns = t.elapsed().as_nanos() as f64;
        yali_obs::set_enabled(false);
        ns
    };
    let mut off_min = vec![f64::INFINITY; cells.len()];
    let mut on_min = vec![f64::INFINITY; cells.len()];
    for pass in 0..16 {
        for (ci, cell) in cells.iter().enumerate() {
            if (pass + ci) % 2 == 0 {
                off_min[ci] = off_min[ci].min(time_cell(cell, false));
                on_min[ci] = on_min[ci].min(time_cell(cell, true));
            } else {
                on_min[ci] = on_min[ci].min(time_cell(cell, true));
                off_min[ci] = off_min[ci].min(time_cell(cell, false));
            }
        }
    }
    let mut cell_ratios: Vec<f64> = on_min
        .iter()
        .zip(&off_min)
        .map(|(on, off)| on / off)
        .collect();
    cell_ratios.sort_by(|a, b| a.total_cmp(b));
    let obs_overhead_pct = (cell_ratios[cell_ratios.len() / 2] - 1.0) * 100.0;

    // One untimed traced pass for `yali-prof`. The JSONL sink takes a
    // mutex per event, so it must never be live inside a Criterion-timed
    // mode — it would blow the 5% obs-overhead gate on `sweep/obs_on`.
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_engine.jsonl");
    yali_obs::set_trace_path(Some(trace_path));
    yali_obs::set_enabled(true);
    let _ = sweep(&corpora);
    yali_obs::set_enabled(false);
    yali_obs::set_trace_path(None);
    std::env::remove_var("YALI_THREADS");

    // Speedups are relative to the same group's serial mode.
    let serial_mean = |group: &str| {
        c.summaries()
            .iter()
            .find(|s| s.id == format!("{group}/serial"))
            .map(|s| s.mean_ns)
            .expect("serial summary")
    };
    let modes: Vec<ModeOut> = c
        .summaries()
        .iter()
        .map(|s| ModeOut {
            name: s.id.clone(),
            mean_ns: s.mean_ns,
            median_ns: s.median_ns,
            min_ns: s.min_ns,
            speedup_vs_serial: serial_mean(s.id.split('/').next().unwrap()) / s.mean_ns,
        })
        .collect();
    let cached_speedup = modes
        .iter()
        .find(|m| m.name == "sweep/parallel_cached")
        .map(|m| m.speedup_vs_serial)
        .unwrap_or(0.0);
    let report = Report {
        description: "embed-all (ir2vec over the corpus) and the Scale::SMALL full-game \
                      sweep (4 games x {knn,svm,lr} x ollvm evader), each serial / \
                      parallel / parallel+cache"
            .to_string(),
        workload: format!(
            "{} classes x {} per class, {} rounds, {} plays per sweep",
            scale.classes,
            scale.per_class,
            scale.rounds,
            Game::ALL.len() * MODELS.len() * scale.rounds
        ),
        threads_parallel: parallel_threads,
        modes,
        speedup_serial_to_parallel_cached: cached_speedup,
        obs_overhead_pct,
        embed_cache: engine::EmbedCache::global().stats().into(),
        transform_cache: engine::TransformCache::global().stats().into(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json + "\n").expect("write BENCH_engine.json");
    println!(
        "serial -> parallel_cached speedup: {cached_speedup:.2}x, \
         obs-on overhead: {obs_overhead_pct:.2}% (report at {path})"
    );
}
