//! Figure 8: Game 1 — every evader against every model (histogram
//! embedding), classifier unaware of the transformation.
//!
//! Paper: optimizations and ollvm are the strongest evaders; fla and sub
//! barely move a histogram+rf classifier; drlsg has no effect at all
//! (SSA conversion reverts it).

use yali_bench::{banner, run_evader_model_grid, Scale};
use yali_core::Game;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 8", "Game1: evaders × models (histogram)", &scale);
    run_evader_model_grid(Game::Game1, &scale);
    yali_bench::emit_runstats();
}
