//! Figure 7: the six models in Game 0 on the histogram embedding —
//! accuracy (paper: rf best at 80.0%, cnn/mlp within 1%) and model memory
//! (paper: mlp/knn/svm/lr < 0.5 GB, cnn 2.0 GB, rf 2.2 GB).

use yali_bench::{banner, mean, pct, print_table, stddev, Scale};
use yali_core::{play, ClassifierSpec, Corpus, GameConfig};
use yali_ml::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 7", "models in Game0 (histogram embedding)", &scale);
    let paper: &[(&str, f64)] = &[
        ("rf", 0.800),
        ("svm", 0.72),
        ("knn", 0.74),
        ("lr", 0.71),
        ("mlp", 0.79),
        ("cnn", 0.79),
    ];
    let mut rows = Vec::new();
    for model in ModelKind::ALL {
        let mut accs = Vec::new();
        let mut mem = 0usize;
        for round in 0..scale.rounds {
            let corpus = Corpus::poj(scale.classes, scale.per_class, 40 + round as u64);
            let cfg = GameConfig::game0(ClassifierSpec::histogram(model), 900 + round as u64);
            let r = play(&corpus, &cfg);
            accs.push(r.accuracy);
            mem = r.model_bytes;
        }
        let p = paper
            .iter()
            .find(|(n, _)| *n == model.name())
            .map(|(_, v)| pct(*v))
            .unwrap_or_default();
        rows.push(vec![
            model.name().to_string(),
            pct(mean(&accs)),
            format!("±{:.1}", stddev(&accs) * 100.0),
            format!("{} KiB", mem / 1024),
            p,
        ]);
        eprintln!("  {} done: {}", model.name(), pct(mean(&accs)));
    }
    print_table(
        "Figure 7 — models in Game0",
        &["model", "accuracy", "std", "model memory", "paper acc≈"],
        &rows,
    );
    yali_bench::emit_runstats();
}
