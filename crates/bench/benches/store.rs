//! Artifact-store throughput: a compute-heavy sweep (the MCMC search
//! evader against MLP and CNN classifiers) timed in three store
//! configurations — cold (empty store directory, every artifact computed
//! and published), warm-disk (populated store, memory caches cleared
//! each iteration — the fresh-process resume path), and warm-memory (the
//! steady state, everything answered from RAM).
//!
//! The workload is deliberately dominated by store-cacheable work:
//! search-based evasion and neural-net training are exactly what a
//! resumed sweep should never redo, while the uncached per-play floor
//! (normalization, featurization, prediction) stays small.
//!
//! Writes `BENCH_store.json` at the repo root with per-mode timings, the
//! cold→warm-disk speedup (gated ≥10x in `scripts/bench.sh`), bytes on
//! disk, and the disk hit ratio; plus `RUNSTATS_store.json` and
//! `TRACE_store.jsonl` from an untimed traced pass for `yali-prof`.

use std::cell::Cell;
use std::path::PathBuf;
use std::time::Duration;

use criterion::Criterion;
use yali_core::{engine, play, store, ClassifierSpec, Corpus, Game, GameConfig, Transformer};
use yali_ml::ModelKind;

const MODELS: [ModelKind; 2] = [ModelKind::Mlp, ModelKind::Cnn];
const EVADER: Transformer = Transformer::Source(yali_core::SourceStrategy::Mcmc);
const CLASSES: usize = 6;
const PER_CLASS: usize = 10;
const ROUNDS: usize = 2;

/// Plays every cell of the sweep grid; the store (when active) absorbs
/// every transform, embedding, and trained model along the way.
fn sweep(corpora: &[Corpus]) -> f64 {
    let mut total = 0.0;
    for model in MODELS {
        for (round, corpus) in corpora.iter().enumerate() {
            let cfg = GameConfig::game0(ClassifierSpec::histogram(model), round as u64)
                .with_game(Game::Game1, EVADER);
            total += play(corpus, &cfg).accuracy;
        }
    }
    total
}

#[derive(serde::Serialize)]
struct ModeOut {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    workload: String,
    modes: Vec<ModeOut>,
    speedup_cold_to_warm_disk: f64,
    speedup_cold_to_warm_memory: f64,
    store_entries: usize,
    bytes_on_disk: u64,
    disk_hit_ratio: f64,
    disk_hits: u64,
    disk_misses: u64,
}

fn main() {
    let corpora: Vec<Corpus> = (0..ROUNDS)
        .map(|r| Corpus::poj(CLASSES, PER_CLASS, 60 + r as u64))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    std::env::set_var("YALI_THREADS", threads.to_string());

    let root = std::env::temp_dir().join(format!(
        "yali_bench_store_{}_{}",
        std::process::id(),
        yali_obs::epoch_ns()
    ));
    std::fs::create_dir_all(&root).expect("create bench store root");

    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // Cold: every iteration opens a brand-new store directory with empty
    // memory caches, so the sweep computes and publishes everything —
    // including all store write I/O.
    let cold_seq = Cell::new(0u64);
    c.bench_function("sweep/cold_disk", |b| {
        b.iter(|| {
            let dir = root.join(format!("cold-{}", cold_seq.replace(cold_seq.get() + 1)));
            store::set_store_dir(Some(&dir)).expect("open cold store");
            engine::clear_caches();
            sweep(&corpora)
        })
    });

    // Populate one shared store, then measure the resume path: memory
    // caches dropped each iteration (as a fresh worker process would
    // start), every artifact answered from disk.
    let warm_dir: PathBuf = root.join("warm");
    store::set_store_dir(Some(&warm_dir)).expect("open warm store");
    engine::clear_caches();
    let _ = sweep(&corpora);
    c.bench_function("sweep/warm_disk", |b| {
        b.iter(|| {
            engine::clear_caches();
            sweep(&corpora)
        })
    });

    // Steady state: memory caches stay warm, the store is never consulted.
    c.bench_function("sweep/warm_memory", |b| b.iter(|| sweep(&corpora)));

    // One untimed traced pass over the warm store for `yali-prof`: the
    // store.read spans and disk-hit counters land in the run report.
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_store.jsonl");
    yali_obs::set_trace_path(Some(trace_path));
    yali_obs::set_enabled(true);
    engine::clear_caches();
    let _ = sweep(&corpora);
    let runstats_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS_store.json");
    yali_core::RunReport::collect()
        .write(runstats_path)
        .expect("write RUNSTATS_store.json");
    yali_obs::set_enabled(false);
    yali_obs::set_trace_path(None);

    let stats = store::active_stats().expect("warm store active");
    store::set_store_dir(None).expect("detach store");
    std::fs::remove_dir_all(&root).ok();
    std::env::remove_var("YALI_THREADS");

    let mean = |name: &str| {
        c.summaries()
            .iter()
            .find(|s| s.id == name)
            .map(|s| s.mean_ns)
            .expect("mode summary")
    };
    let modes: Vec<ModeOut> = c
        .summaries()
        .iter()
        .map(|s| ModeOut {
            name: s.id.clone(),
            mean_ns: s.mean_ns,
            median_ns: s.median_ns,
            min_ns: s.min_ns,
        })
        .collect();
    let speedup_disk = mean("sweep/cold_disk") / mean("sweep/warm_disk");
    let speedup_memory = mean("sweep/cold_disk") / mean("sweep/warm_memory");
    let denom = (stats.disk_hits + stats.disk_misses).max(1);
    let report = Report {
        description: "a game1 sweep ({mlp,cnn} x mcmc evader) against an empty store, a \
                      populated store with cold memory caches (the fresh-process resume \
                      path), and warm memory caches"
            .to_string(),
        workload: format!(
            "{CLASSES} classes x {PER_CLASS} per class, {ROUNDS} rounds, {} plays per sweep",
            MODELS.len() * ROUNDS
        ),
        modes,
        speedup_cold_to_warm_disk: speedup_disk,
        speedup_cold_to_warm_memory: speedup_memory,
        store_entries: stats.entries,
        bytes_on_disk: stats.total_bytes,
        disk_hit_ratio: stats.disk_hits as f64 / denom as f64,
        disk_hits: stats.disk_hits,
        disk_misses: stats.disk_misses,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, json + "\n").expect("write BENCH_store.json");
    println!(
        "cold -> warm_disk speedup: {speedup_disk:.2}x, disk hit ratio: {:.3}, \
         {} bytes on disk (report at {path})",
        report.disk_hit_ratio, report.bytes_on_disk
    );
}
