//! Inference-path throughput: all six trained vector models classifying
//! the Scale::SMALL sweep's challenge pool (the whole corpus under six
//! evaders), timed in three configurations —
//!
//! * `infer/serial` — the pre-batching behavior: one `predict` call per
//!   sample on one thread;
//! * `infer/batched` — `predict_batch` on one thread: the GEMM-backed
//!   chunk kernels (whole-matrix forwards, the distance-matrix knn,
//!   tree-by-tree forest votes) with no parallelism;
//! * `infer/batched_parallel` — `predict_batch` with the engine's worker
//!   pool, chunks fanned out on `yali-par`.
//!
//! All three modes produce identical labels (enforced at startup and by
//! the `prop_infer` determinism proptest).
//!
//! A second `infer/subset_*` group times the reduced-precision inference
//! path on the models that have one (lr, svm, mlp), single-threaded so
//! the comparison is pure kernel arithmetic: `infer/subset_f64` is the
//! ordinary batched engine over that subset and the baseline for the
//! other two, `infer/subset_f32` narrows weights and activations to
//! `f32`, and `infer/subset_int8` runs the quantized path. The report
//! carries each twin's label agreement with the f64 verdicts; the int8
//! gate (>= 99.5%) is asserted at startup and re-checked by
//! `scripts/bench.sh`. Writes `BENCH_infer.json` at the repo root.

use std::time::Duration;

use criterion::Criterion;
use yali_core::{transform_all, Corpus, Sample, Scale, Transformer};
use yali_ml::{F32Classifier, Int8Classifier, ModelKind, TrainConfig, VectorClassifier};

/// The challenge evaders: a representative slice of Figure 4's column
/// (identity, optimizer, and the O-LLVM passes).
const EVADERS: [Transformer; 6] = [
    Transformer::None,
    Transformer::Opt(yali_opt::OptLevel::O2),
    Transformer::Opt(yali_opt::OptLevel::O3),
    Transformer::Ir(yali_obf::IrObf::Ollvm),
    Transformer::Ir(yali_obf::IrObf::Fla),
    Transformer::Ir(yali_obf::IrObf::Sub),
];

fn embed(samples: &[&Sample], t: Transformer, seed: u64) -> Vec<Vec<f64>> {
    transform_all(samples, t, seed)
        .iter()
        .map(yali_embed::histogram)
        .collect()
}

#[derive(serde::Serialize)]
struct ModeOut {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    workload: String,
    threads_parallel: usize,
    n_queries: usize,
    models: Vec<String>,
    /// The models with reduced-precision twins (the `infer/subset_*`
    /// modes run exactly these).
    lowp_models: Vec<String>,
    modes: Vec<ModeOut>,
    speedup_serial_to_batched: f64,
    speedup_serial_to_batched_parallel: f64,
    /// Fraction of subset labels where the f32 twin agrees with f64.
    f32_agreement: f64,
    /// Fraction of subset labels where the int8 twin agrees with f64
    /// (gated at >= 0.995 here and in scripts/bench.sh).
    int8_agreement: f64,
}

/// Label agreement between two prediction vectors.
fn agreement(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len().max(1) as f64
}

fn main() {
    let scale = Scale::SMALL;
    let corpus = Corpus::poj(scale.classes, scale.per_class, 77);
    let (train, _) = corpus.split(0.8, 7);
    let xtr = embed(&train, Transformer::None, 1);
    let ytr: Vec<usize> = train.iter().map(|s| s.class).collect();
    let models: Vec<(ModelKind, VectorClassifier)> = ModelKind::ALL
        .iter()
        .map(|&k| {
            (
                k,
                VectorClassifier::fit(k, &xtr, &ytr, corpus.n_classes, &TrainConfig::default()),
            )
        })
        .collect();

    // The challenge pool: every corpus sample under every evader — the
    // shape of a sweep's evaluation phase.
    let all: Vec<&Sample> = corpus.samples.iter().collect();
    let mut queries: Vec<Vec<f64>> = Vec::new();
    for (i, &t) in EVADERS.iter().enumerate() {
        queries.extend(embed(&all, t, 100 + i as u64));
    }

    // Per-sample loop vs batched API; both sum the labels so the work
    // cannot be optimized away.
    let serial_pass = || {
        let mut acc = 0usize;
        for (_, clf) in &models {
            for q in &queries {
                acc += clf.predict(q);
            }
        }
        acc
    };
    let batched_pass = || {
        let mut acc = 0usize;
        for (_, clf) in &models {
            acc += clf.predict_batch(&queries).iter().sum::<usize>();
        }
        acc
    };
    assert_eq!(serial_pass(), batched_pass(), "modes must agree on labels");

    // The reduced-precision subset: the models whose inference is a pure
    // dense pipeline, plus their f32 and int8 twins.
    const LOWP_MODELS: [ModelKind; 3] = [ModelKind::Lr, ModelKind::Svm, ModelKind::Mlp];
    let subset: Vec<(&VectorClassifier, F32Classifier, Int8Classifier)> = LOWP_MODELS
        .iter()
        .map(|want| {
            let clf = models
                .iter()
                .find(|(k, _)| k == want)
                .map(|(_, c)| c)
                .expect("subset model trained above");
            (
                clf,
                F32Classifier::from_model(clf).expect("f32 twin"),
                Int8Classifier::from_model(clf).expect("int8 twin"),
            )
        })
        .collect();

    // Twin-vs-f64 label agreement over the whole challenge pool — the
    // accuracy-delta gate, asserted here and re-checked by bench.sh.
    let (mut f32_hits, mut int8_hits, mut lowp_total) = (0.0, 0.0, 0.0);
    for (clf, f32c, int8c) in &subset {
        let want = clf.predict_batch_with_threads(&queries, 1);
        f32_hits += agreement(&f32c.predict_batch_with_threads(&queries, 1), &want)
            * want.len() as f64;
        int8_hits += agreement(&int8c.predict_batch_with_threads(&queries, 1), &want)
            * want.len() as f64;
        lowp_total += want.len() as f64;
    }
    let f32_agreement = f32_hits / lowp_total;
    let int8_agreement = int8_hits / lowp_total;
    assert!(
        int8_agreement >= 0.995,
        "int8 agreement {int8_agreement} below the 99.5% gate"
    );
    assert!(
        f32_agreement >= 0.995,
        "f32 agreement {f32_agreement} below the 99.5% gate"
    );

    // Single-threaded passes over the subset, one per precision; each
    // sums the labels so the work cannot be optimized away.
    let subset_f64_pass = || {
        let mut acc = 0usize;
        for (clf, _, _) in &subset {
            acc += clf.predict_batch_with_threads(&queries, 1).iter().sum::<usize>();
        }
        acc
    };
    let subset_f32_pass = || {
        let mut acc = 0usize;
        for (_, f32c, _) in &subset {
            acc += f32c.predict_batch_with_threads(&queries, 1).iter().sum::<usize>();
        }
        acc
    };
    let subset_int8_pass = || {
        let mut acc = 0usize;
        for (_, _, int8c) in &subset {
            acc += int8c.predict_batch_with_threads(&queries, 1).iter().sum::<usize>();
        }
        acc
    };

    let parallel_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    std::env::set_var("YALI_THREADS", "1");
    c.bench_function("infer/serial", |b| b.iter(serial_pass));
    c.bench_function("infer/batched", |b| b.iter(batched_pass));
    c.bench_function("infer/subset_f64", |b| b.iter(subset_f64_pass));
    c.bench_function("infer/subset_f32", |b| b.iter(subset_f32_pass));
    c.bench_function("infer/subset_int8", |b| b.iter(subset_int8_pass));
    std::env::set_var("YALI_THREADS", parallel_threads.to_string());
    c.bench_function("infer/batched_parallel", |b| b.iter(batched_pass));

    // One instrumented pass for the companion run report (chunk latency
    // histogram, batch counters, pool utilization).
    yali_obs::set_enabled(true);
    let _ = batched_pass();
    let runstats_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS_infer.json");
    yali_core::RunReport::collect()
        .write(runstats_path)
        .expect("write RUNSTATS_infer.json");
    yali_obs::set_enabled(false);

    // One untimed traced pass for `yali-prof` (separate from the report
    // pass above so the JSONL sink's mutex writes never taint the
    // RUNSTATS phase timings).
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_infer.jsonl");
    yali_obs::set_trace_path(Some(trace_path));
    yali_obs::set_enabled(true);
    {
        // `predict_batch` itself only records histograms (the per-chunk
        // latency), so give the capture a root span to hang the pool's
        // region events under.
        let _pass = yali_obs::span!("bench.infer.pass");
        let _ = batched_pass();
    }
    yali_obs::set_enabled(false);
    yali_obs::set_trace_path(None);
    std::env::remove_var("YALI_THREADS");

    let mean_of = |name: &str| {
        c.summaries()
            .iter()
            .find(|s| s.id == name)
            .map(|s| s.mean_ns)
            .expect("bench summary")
    };
    let serial_mean = mean_of("infer/serial");
    // The subset modes compare precisions over the same three models, so
    // their baseline is the subset's own f64 pass, not the six-model
    // serial loop.
    let subset_mean = mean_of("infer/subset_f64");
    let modes: Vec<ModeOut> = c
        .summaries()
        .iter()
        .map(|s| ModeOut {
            name: s.id.clone(),
            mean_ns: s.mean_ns,
            median_ns: s.median_ns,
            min_ns: s.min_ns,
            speedup_vs_serial: if s.id.starts_with("infer/subset_") {
                subset_mean / s.mean_ns
            } else {
                serial_mean / s.mean_ns
            },
        })
        .collect();
    let speedup_of = |name: &str| {
        modes
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.speedup_vs_serial)
            .unwrap_or(0.0)
    };
    let speedup_batched = speedup_of("infer/batched");
    let speedup_batched_parallel = speedup_of("infer/batched_parallel");
    let report = Report {
        description: "batched inference engine: six trained vector models classifying the \
                      Scale::SMALL corpus under six evaders, serial per-sample vs batched \
                      (1 thread) vs batched+parallel; plus the reduced-precision subset \
                      (lr, svm, mlp at f64 / f32 / int8, 1 thread, speedups vs subset_f64)"
            .to_string(),
        workload: format!(
            "{} classes x {} per class, {} evaders, {} queries x {} models per pass",
            scale.classes,
            scale.per_class,
            EVADERS.len(),
            corpus.samples.len() * EVADERS.len(),
            ModelKind::ALL.len()
        ),
        threads_parallel: parallel_threads,
        n_queries: corpus.samples.len() * EVADERS.len(),
        models: ModelKind::ALL.iter().map(|m| m.name().to_string()).collect(),
        lowp_models: LOWP_MODELS.iter().map(|m| m.name().to_string()).collect(),
        modes,
        speedup_serial_to_batched: speedup_batched,
        speedup_serial_to_batched_parallel: speedup_batched_parallel,
        f32_agreement,
        int8_agreement,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
    std::fs::write(path, json + "\n").expect("write BENCH_infer.json");
    println!(
        "infer serial -> batched: {:.2}x, -> batched_parallel: {:.2}x; \
         int8 agreement {:.4}, f32 agreement {:.4} (report at {})",
        report.speedup_serial_to_batched,
        report.speedup_serial_to_batched_parallel,
        report.int8_agreement,
        report.f32_agreement,
        path
    );
}
