//! Inference-path throughput: all six trained vector models classifying
//! the Scale::SMALL sweep's challenge pool (the whole corpus under six
//! evaders), timed in three configurations —
//!
//! * `infer/serial` — the pre-batching behavior: one `predict` call per
//!   sample on one thread;
//! * `infer/batched` — `predict_batch` on one thread: the GEMM-backed
//!   chunk kernels (whole-matrix forwards, the distance-matrix knn,
//!   tree-by-tree forest votes) with no parallelism;
//! * `infer/batched_parallel` — `predict_batch` with the engine's worker
//!   pool, chunks fanned out on `yali-par`.
//!
//! All three modes produce identical labels (enforced at startup and by
//! the `prop_infer` determinism proptest). Writes `BENCH_infer.json` at
//! the repo root.

use std::time::Duration;

use criterion::Criterion;
use yali_core::{transform_all, Corpus, Sample, Scale, Transformer};
use yali_ml::{ModelKind, TrainConfig, VectorClassifier};

/// The challenge evaders: a representative slice of Figure 4's column
/// (identity, optimizer, and the O-LLVM passes).
const EVADERS: [Transformer; 6] = [
    Transformer::None,
    Transformer::Opt(yali_opt::OptLevel::O2),
    Transformer::Opt(yali_opt::OptLevel::O3),
    Transformer::Ir(yali_obf::IrObf::Ollvm),
    Transformer::Ir(yali_obf::IrObf::Fla),
    Transformer::Ir(yali_obf::IrObf::Sub),
];

fn embed(samples: &[&Sample], t: Transformer, seed: u64) -> Vec<Vec<f64>> {
    transform_all(samples, t, seed)
        .iter()
        .map(yali_embed::histogram)
        .collect()
}

#[derive(serde::Serialize)]
struct ModeOut {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    workload: String,
    threads_parallel: usize,
    n_queries: usize,
    models: Vec<String>,
    modes: Vec<ModeOut>,
    speedup_serial_to_batched: f64,
    speedup_serial_to_batched_parallel: f64,
}

fn main() {
    let scale = Scale::SMALL;
    let corpus = Corpus::poj(scale.classes, scale.per_class, 77);
    let (train, _) = corpus.split(0.8, 7);
    let xtr = embed(&train, Transformer::None, 1);
    let ytr: Vec<usize> = train.iter().map(|s| s.class).collect();
    let models: Vec<(ModelKind, VectorClassifier)> = ModelKind::ALL
        .iter()
        .map(|&k| {
            (
                k,
                VectorClassifier::fit(k, &xtr, &ytr, corpus.n_classes, &TrainConfig::default()),
            )
        })
        .collect();

    // The challenge pool: every corpus sample under every evader — the
    // shape of a sweep's evaluation phase.
    let all: Vec<&Sample> = corpus.samples.iter().collect();
    let mut queries: Vec<Vec<f64>> = Vec::new();
    for (i, &t) in EVADERS.iter().enumerate() {
        queries.extend(embed(&all, t, 100 + i as u64));
    }

    // Per-sample loop vs batched API; both sum the labels so the work
    // cannot be optimized away.
    let serial_pass = || {
        let mut acc = 0usize;
        for (_, clf) in &models {
            for q in &queries {
                acc += clf.predict(q);
            }
        }
        acc
    };
    let batched_pass = || {
        let mut acc = 0usize;
        for (_, clf) in &models {
            acc += clf.predict_batch(&queries).iter().sum::<usize>();
        }
        acc
    };
    assert_eq!(serial_pass(), batched_pass(), "modes must agree on labels");

    let parallel_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    std::env::set_var("YALI_THREADS", "1");
    c.bench_function("infer/serial", |b| b.iter(serial_pass));
    c.bench_function("infer/batched", |b| b.iter(batched_pass));
    std::env::set_var("YALI_THREADS", parallel_threads.to_string());
    c.bench_function("infer/batched_parallel", |b| b.iter(batched_pass));

    // One instrumented pass for the companion run report (chunk latency
    // histogram, batch counters, pool utilization).
    yali_obs::set_enabled(true);
    let _ = batched_pass();
    let runstats_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS_infer.json");
    yali_core::RunReport::collect()
        .write(runstats_path)
        .expect("write RUNSTATS_infer.json");
    yali_obs::set_enabled(false);

    // One untimed traced pass for `yali-prof` (separate from the report
    // pass above so the JSONL sink's mutex writes never taint the
    // RUNSTATS phase timings).
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_infer.jsonl");
    yali_obs::set_trace_path(Some(trace_path));
    yali_obs::set_enabled(true);
    {
        // `predict_batch` itself only records histograms (the per-chunk
        // latency), so give the capture a root span to hang the pool's
        // region events under.
        let _pass = yali_obs::span!("bench.infer.pass");
        let _ = batched_pass();
    }
    yali_obs::set_enabled(false);
    yali_obs::set_trace_path(None);
    std::env::remove_var("YALI_THREADS");

    let serial_mean = c
        .summaries()
        .iter()
        .find(|s| s.id == "infer/serial")
        .map(|s| s.mean_ns)
        .expect("serial summary");
    let modes: Vec<ModeOut> = c
        .summaries()
        .iter()
        .map(|s| ModeOut {
            name: s.id.clone(),
            mean_ns: s.mean_ns,
            median_ns: s.median_ns,
            min_ns: s.min_ns,
            speedup_vs_serial: serial_mean / s.mean_ns,
        })
        .collect();
    let speedup_of = |name: &str| {
        modes
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.speedup_vs_serial)
            .unwrap_or(0.0)
    };
    let speedup_batched = speedup_of("infer/batched");
    let speedup_batched_parallel = speedup_of("infer/batched_parallel");
    let report = Report {
        description: "batched inference engine: six trained vector models classifying the \
                      Scale::SMALL corpus under six evaders, serial per-sample vs batched \
                      (1 thread) vs batched+parallel"
            .to_string(),
        workload: format!(
            "{} classes x {} per class, {} evaders, {} queries x {} models per pass",
            scale.classes,
            scale.per_class,
            EVADERS.len(),
            corpus.samples.len() * EVADERS.len(),
            ModelKind::ALL.len()
        ),
        threads_parallel: parallel_threads,
        n_queries: corpus.samples.len() * EVADERS.len(),
        models: ModelKind::ALL.iter().map(|m| m.name().to_string()).collect(),
        modes,
        speedup_serial_to_batched: speedup_batched,
        speedup_serial_to_batched_parallel: speedup_batched_parallel,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
    std::fs::write(path, json + "\n").expect("write BENCH_infer.json");
    println!(
        "infer serial -> batched: {:.2}x, -> batched_parallel: {:.2}x (report at {})",
        report.speedup_serial_to_batched, report.speedup_serial_to_batched_parallel, path
    );
}
