//! Figure 6: the nine embeddings across Games 1, 2 and 3, with the
//! O-LLVM evader (paper: accuracy drops sharply in the asymmetric games;
//! histogram and cfg_compact lead Game 2 at ~76%).

use yali_bench::{banner, mean, pct, print_table, Scale};
use yali_core::{play, ClassifierSpec, Corpus, Game, GameConfig, Transformer};
use yali_embed::EmbeddingKind;
use yali_obf::IrObf;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 6", "embeddings in Games 1-3 (ollvm evader)", &scale);
    let evader = Transformer::Ir(IrObf::Ollvm);
    let mut rows = Vec::new();
    for kind in EmbeddingKind::ALL {
        let mut cells = vec![kind.name().to_string()];
        for game in [Game::Game1, Game::Game2, Game::Game3] {
            let mut accs = Vec::new();
            for round in 0..scale.rounds {
                let corpus = Corpus::poj(scale.embed_classes, scale.per_class, 300 + round as u64);
                let mut spec = ClassifierSpec::zhang_net(kind);
                spec.dgcnn.epochs = 10;
                spec.dgcnn.k = 10;
                spec.train.epochs = 20;
                let cfg = GameConfig::game0(spec, 700 + round as u64).with_game(game, evader);
                accs.push(play(&corpus, &cfg).accuracy);
            }
            cells.push(pct(mean(&accs)));
        }
        eprintln!("  {} done", kind.name());
        rows.push(cells);
    }
    print_table(
        "Figure 6 — embeddings under evasion",
        &["embedding", "game1", "game2", "game3"],
        &rows,
    );
    println!("paper: accuracies collapse in game1/game3 (< 25%), recover in game2 (~60-76%).");
    yali_bench::emit_runstats();
}
