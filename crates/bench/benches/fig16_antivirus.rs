//! Figure 16: the best learned classifier (rf trained on all seven
//! suites) against the anti-virus stand-in (a signature scanner built
//! from the malware corpus), per challenge transformer.
//!
//! Paper: VirusTotal's best engine scores 83.9–96.8% on "is malware" and
//! 70.9–80.6% on "is mirai"; the rf classifier is ≥95.8% everywhere.

use yali_bench::{banner, pct, print_table, Scale};
use yali_core::{malware_round, MalwareCorpus, SignatureScanner, Transformer, MALWARE_TRANSFORMERS};
use yali_ml::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 16", "classifier vs signature anti-virus", &scale);
    let corpus = MalwareCorpus::build(scale.malware_train, scale.malware_test, 99);
    // The AV's database comes from the training malware/benign at -O0.
    let mal_mods: Vec<yali_ir::Module> = corpus
        .train_malware
        .iter()
        .map(yali_minic::lower)
        .collect();
    let ben_mods: Vec<yali_ir::Module> = corpus
        .train_benign
        .iter()
        .map(yali_minic::lower)
        .collect();
    let scanner = SignatureScanner::build(&mal_mods, &ben_mods);
    // The learned side: rf trained on all seven suites.
    let rf = malware_round(&corpus, ModelKind::Rf, 7, 5);

    let mut rows = Vec::new();
    for (ti, t) in MALWARE_TRANSFORMERS.iter().enumerate() {
        let mut av_malware_hits = 0usize;
        let mut av_family_hits = 0usize;
        let mut total = 0usize;
        for (want_mal, pool) in [(true, &corpus.test_malware), (false, &corpus.test_benign)] {
            // Transform the pool, then scan the whole batch at once.
            let mods: Vec<yali_ir::Module> = pool
                .iter()
                .enumerate()
                .map(|(k, p)| t.apply(p, 0x7E57 ^ ((ti as u64) << 20) ^ (k as u64)))
                .collect();
            av_malware_hits += scanner
                .is_malware_all(&mods)
                .into_iter()
                .filter(|&v| v == want_mal)
                .count();
            av_family_hits += scanner
                .is_family_all(&mods)
                .into_iter()
                .filter(|&v| v == want_mal)
                .count();
            total += mods.len();
        }
        let rf_acc = rf
            .per_transformer
            .iter()
            .find(|(n, _)| n == t.name())
            .map(|(_, a)| *a)
            .unwrap_or(0.0);
        let label = match t {
            Transformer::None => "O0".to_string(),
            other => other.name().to_string(),
        };
        rows.push(vec![
            label,
            pct(av_malware_hits as f64 / total as f64),
            pct(av_family_hits as f64 / total as f64),
            pct(rf_acc),
        ]);
        eprintln!("  {} done", t.name());
    }
    print_table(
        "Figure 16 — AV vs rf(7 suites) per challenge transformer",
        &["transform", "AV is-malware", "AV is-family", "rf"],
        &rows,
    );
    println!("paper: rf ≥95.8% on all columns; AV 83.9-96.8% (malware), 70.9-80.6% (family).");
    yali_bench::emit_runstats();
}
