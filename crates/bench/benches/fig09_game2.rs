//! Figure 9: Game 2 — the classifier trains on programs transformed with
//! the *same* obfuscator the evader uses. Paper: knowing the obfuscation
//! restores nearly Game-0 accuracy for every transformation.

use yali_bench::{banner, run_evader_model_grid, Scale};
use yali_core::Game;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 9", "Game2: shared transformation (histogram)", &scale);
    run_evader_model_grid(Game::Game2, &scale);
    yali_bench::emit_runstats();
}
