//! Figure 10: Euclidean distance between the opcode histograms of original
//! and transformed programs — the paper's explanation for which evaders
//! work (larger distance = stronger evasion; O3 and ollvm lead).

use yali_bench::{banner, mean, print_table, stddev, Scale};
use yali_core::{Corpus, Transformer};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 10", "histogram distance original vs transformed", &scale);
    let corpus = Corpus::poj(scale.classes.min(8), scale.per_class, 1234);
    let mut rows = Vec::new();
    let mut summary: Vec<(String, f64)> = Vec::new();
    for t in Transformer::EVADERS {
        if t == Transformer::None {
            continue;
        }
        let mut dists = Vec::new();
        for (i, s) in corpus.samples.iter().enumerate() {
            let base = yali_embed::histogram(&yali_minic::lower(&s.program));
            let trans = yali_embed::histogram(&t.apply(&s.program, 42 ^ i as u64));
            dists.push(yali_embed::euclidean(&base, &trans));
        }
        summary.push((t.name().to_string(), mean(&dists)));
        rows.push(vec![
            t.name().to_string(),
            format!("{:.2}", mean(&dists)),
            format!("±{:.2}", stddev(&dists)),
        ]);
        eprintln!("  {} done", t.name());
    }
    print_table(
        "Figure 10 — embedding distances",
        &["transformer", "mean distance", "std"],
        &rows,
    );
    summary.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "strongest movers: {} (paper: O3 and ollvm lead; drlsg/fla/sub trail)",
        summary
            .iter()
            .take(3)
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    yali_bench::emit_runstats();
}
