//! Training-path throughput: the gradient-trained classifiers (mlp, cnn)
//! inside a Scale::SMALL game sweep, timed in three engine configurations
//! — serial with caching disabled (`YALI_THREADS=1 YALI_CACHE=0`, the
//! pre-engine behavior), parallel with a cold model store, and parallel
//! with a warm model store (the steady state of a sweep that revisits
//! design points, where [`yali_core::engine::ModelCache`] answers every
//! fit with a deserialized model). A `gemm` group times the kernel
//! family at an MLP-forward-sized shape: a naive triple loop
//! (`gemm/serial`), the blocked scalar kernel pinned explicitly
//! (`gemm/blocked`), and the process's dispatched SIMD kernel
//! (`gemm/simd`) — each gemm mode also reports GFLOP/s, and the report
//! names which kernel `gemm/simd` ran.
//!
//! Writes `BENCH_train.json` at the repo root with per-mode timings,
//! speedups over each group's serial mode, and the model-store counters.

use std::time::Duration;

use criterion::Criterion;
use yali_core::{engine, play, ClassifierSpec, Corpus, Game, GameConfig, Scale, Transformer};
use yali_ml::Matrix;
use yali_ml::ModelKind;
use yali_ml::{active_kernel, GemmKernel};

const MODELS: [ModelKind; 2] = [ModelKind::Mlp, ModelKind::Cnn];
const EVADER: Transformer = Transformer::Ir(yali_obf::IrObf::Ollvm);

/// Plays the training-heavy grid: every round's corpus against both
/// gradient-trained models in games 0 and 1 (same trained classifier per
/// round+model — exactly the replay pattern the model store serves).
fn sweep(corpora: &[Corpus]) -> f64 {
    let mut total = 0.0;
    for game in [Game::Game0, Game::Game1] {
        for model in MODELS {
            for (round, corpus) in corpora.iter().enumerate() {
                let cfg = GameConfig::game0(ClassifierSpec::histogram(model), round as u64)
                    .with_game(game, EVADER);
                total += play(corpus, &cfg).accuracy;
            }
        }
    }
    total
}

/// Naive triple-loop matmul: the kernel the blocked GEMM replaced, kept
/// here as the benchmark baseline.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.get(i, kk);
            for j in 0..b.cols {
                let cur = out.get(i, j);
                out.set(i, j, cur + av * b.get(kk, j));
            }
        }
    }
    out
}

#[derive(serde::Serialize)]
struct ModeOut {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    speedup_vs_serial: f64,
    /// Arithmetic throughput, only for the gemm modes (`2·m·k·n` flops
    /// over the mean time); `null` for the sweep modes.
    gflops: Option<f64>,
}

#[derive(serde::Serialize)]
struct CacheOut {
    hits: u64,
    misses: u64,
    inserts: u64,
    entries: usize,
    hit_rate: f64,
}

impl From<engine::CacheStats> for CacheOut {
    fn from(s: engine::CacheStats) -> CacheOut {
        CacheOut {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            entries: s.entries,
            hit_rate: s.hit_rate(),
        }
    }
}

#[derive(serde::Serialize)]
struct Report {
    description: String,
    workload: String,
    threads_parallel: usize,
    modes: Vec<ModeOut>,
    /// Which kernel family member `gemm/simd` dispatched to (per-process
    /// CPU detection; "scalar" when no SIMD kernel is available).
    gemm_simd_kernel: String,
    speedup_serial_to_parallel_cached: f64,
    model_cache: CacheOut,
}

fn main() {
    let scale = Scale::SMALL;
    let corpora: Vec<Corpus> = (0..scale.rounds)
        .map(|r| Corpus::poj(scale.classes, scale.per_class, 60 + r as u64))
        .collect();
    let parallel_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // GEMM micro-measure at an MLP-forward shape (batch x features times
    // features x hidden); "serial" is the naive triple loop, "blocked"
    // pins the scalar kernel, "simd" is whatever the process dispatched
    // (the widest kernel this CPU runs).
    let ga = Matrix::from_fn(96, 128, |r, cc| ((r * 31 + cc * 7) % 13) as f64 * 0.25 - 1.5);
    let gb = Matrix::from_fn(128, 96, |r, cc| ((r * 17 + cc * 3) % 11) as f64 * 0.5 - 2.0);
    let gemm_flops = 2.0 * 96.0 * 128.0 * 96.0;
    c.bench_function("gemm/serial", |b| b.iter(|| naive_matmul(&ga, &gb)));
    c.bench_function("gemm/blocked", |b| {
        b.iter(|| ga.matmul_with_kernel(&gb, GemmKernel::Scalar))
    });
    c.bench_function("gemm/simd", |b| b.iter(|| ga.matmul(&gb)));

    // The pre-engine configuration: one thread, no caching at all.
    std::env::set_var("YALI_THREADS", "1");
    std::env::set_var("YALI_CACHE", "0");
    c.bench_function("train/serial", |b| b.iter(|| sweep(&corpora)));
    std::env::remove_var("YALI_CACHE");

    std::env::set_var("YALI_THREADS", parallel_threads.to_string());
    c.bench_function("train/parallel", |b| {
        b.iter(|| {
            engine::clear_caches();
            sweep(&corpora)
        })
    });

    engine::clear_caches();
    c.bench_function("train/parallel_cached", |b| b.iter(|| sweep(&corpora)));

    // One instrumented pass over the warm store for the companion run
    // report (epoch counters, GEMM counts, phase wall times).
    yali_obs::set_enabled(true);
    let _ = sweep(&corpora);
    let runstats_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS_train.json");
    yali_core::RunReport::collect()
        .write(runstats_path)
        .expect("write RUNSTATS_train.json");
    yali_obs::set_enabled(false);

    // One untimed traced pass for `yali-prof` (separate from the report
    // pass above so the JSONL sink's mutex writes never taint the
    // RUNSTATS phase timings).
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_train.jsonl");
    yali_obs::set_trace_path(Some(trace_path));
    yali_obs::set_enabled(true);
    let _ = sweep(&corpora);
    yali_obs::set_enabled(false);
    yali_obs::set_trace_path(None);
    std::env::remove_var("YALI_THREADS");

    // Speedups are relative to the same group's serial mode.
    let serial_mean = |group: &str| {
        c.summaries()
            .iter()
            .find(|s| s.id == format!("{group}/serial"))
            .map(|s| s.mean_ns)
            .expect("serial summary")
    };
    let modes: Vec<ModeOut> = c
        .summaries()
        .iter()
        .map(|s| ModeOut {
            name: s.id.clone(),
            mean_ns: s.mean_ns,
            median_ns: s.median_ns,
            min_ns: s.min_ns,
            speedup_vs_serial: serial_mean(s.id.split('/').next().unwrap()) / s.mean_ns,
            gflops: s.id.starts_with("gemm/").then(|| gemm_flops / s.mean_ns),
        })
        .collect();
    let cached_speedup = modes
        .iter()
        .find(|m| m.name == "train/parallel_cached")
        .map(|m| m.speedup_vs_serial)
        .unwrap_or(0.0);

    let report = Report {
        description: "gradient-training sweep (games 0-1 x {mlp,cnn} x ollvm evader at \
                      Scale::SMALL), serial / parallel+cold-store / parallel+warm-store, \
                      plus the GEMM kernel family (naive / blocked scalar / dispatched \
                      SIMD, GFLOP/s each) at 96x128x96"
            .to_string(),
        workload: format!(
            "{} classes x {} per class, {} rounds, {} plays per sweep",
            scale.classes,
            scale.per_class,
            scale.rounds,
            2 * MODELS.len() * scale.rounds
        ),
        threads_parallel: parallel_threads,
        modes,
        gemm_simd_kernel: active_kernel().name().to_string(),
        speedup_serial_to_parallel_cached: cached_speedup,
        model_cache: engine::ModelCache::global().stats().into(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    std::fs::write(path, json + "\n").expect("write BENCH_train.json");
    println!(
        "train serial -> parallel_cached speedup: {cached_speedup:.2}x (report at {path})"
    );
}
