//! Figure 13: running times of optimized (`-O3`) and obfuscated (ollvm)
//! code relative to `-O0`, on the 16 Benchmarks Game programs.
//!
//! Paper: ollvm slows every program (geomean 8.33×, worst ~30×); -O3
//! speeds all of them up (geomean 2.32×, best ~7×). "Time" here is the
//! interpreter's deterministic instruction-cost model.

use rand::SeedableRng;
use yali_bench::{print_table, Scale};
use yali_dataset::BENCHMARKS;
use yali_ir::interp::{run, ExecConfig};

fn main() {
    let scale = Scale::from_env();
    println!("=== Figure 13: benchmark running times (cost model) ===");
    let _ = scale;
    let cfg = ExecConfig {
        fuel: 200_000_000,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut slowdowns = Vec::new();
    for b in BENCHMARKS {
        let p = yali_minic::parse(b.source).expect("benchmark parses");
        let m0 = yali_minic::lower(&p);
        let base = run(&m0, "main", &[], &[], &cfg).expect("O0 runs");
        let m3 = yali_opt::optimized(&m0, yali_opt::OptLevel::O3);
        let fast = run(&m3, "main", &[], &[], &cfg).expect("O3 runs");
        let mut mo = m0.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        yali_obf::ollvm(&mut mo, &mut rng);
        let slow = run(&mo, "main", &[], &[], &cfg).expect("ollvm runs");
        assert_eq!(base.output, fast.output, "{}: O3 changed behaviour", b.name);
        assert_eq!(base.output, slow.output, "{}: ollvm changed behaviour", b.name);
        let speedup = base.cost as f64 / fast.cost as f64;
        let slowdown = slow.cost as f64 / base.cost as f64;
        speedups.push(speedup);
        slowdowns.push(slowdown);
        rows.push(vec![
            b.name.to_string(),
            format!("{:.2}x faster", speedup),
            format!("{:.2}x slower", slowdown),
        ]);
        eprintln!("  {} done", b.name);
    }
    print_table(
        "Figure 13 — relative running times vs -O0",
        &["benchmark", "clang -O3", "ollvm"],
        &rows,
    );
    let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
    println!(
        "geomean: O3 {:.2}x faster (paper 2.32x), ollvm {:.2}x slower (paper 8.33x)",
        geo(&speedups),
        geo(&slowdowns)
    );
    yali_bench::emit_runstats();
}
