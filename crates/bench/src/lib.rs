//! # yali-bench
//!
//! The experiment harness: shared table-printing and averaging helpers
//! used by the per-figure bench targets (`benches/figNN_*.rs`), each of
//! which regenerates one table or figure of the paper. Run them with
//! `cargo bench -p yali-bench --bench fig07_models` (set
//! `YALI_SCALE=paper` to approach the paper's workload sizes).

#![warn(missing_docs)]

pub use yali_core::Scale;

/// Prints a Markdown-ish table with aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        println!("{s}");
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
    println!();
}

/// Formats an accuracy as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Prints the standard experiment banner with the active scale.
pub fn banner(figure: &str, what: &str, scale: &Scale) {
    println!("=== {figure}: {what} ===");
    println!(
        "scale: {} classes × {} samples, {} rounds (YALI_SCALE=small|medium|paper)",
        scale.classes, scale.per_class, scale.rounds
    );
}

/// Writes `RUNSTATS.json` at the repo root when observability is on
/// (`YALI_OBS=1`) and does nothing otherwise. Every figure bench calls
/// this on exit, so an instrumented run leaves its cache hit ratios, phase
/// wall times, and pool utilization next to the printed tables.
pub fn emit_runstats() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../RUNSTATS.json");
    yali_core::report::maybe_write_runstats(path);
    if yali_obs::enabled() {
        println!("run report at {path}");
    }
}


/// Plays every round of one sweep cell and returns the mean accuracy —
/// a pure function of `(game, evader, model, scale)`, so sweep cells can
/// run in any order or in parallel.
pub fn sweep_cell(
    game: yali_core::Game,
    evader: yali_core::Transformer,
    model: yali_ml::ModelKind,
    scale: &Scale,
) -> f64 {
    use yali_core::{play, ClassifierSpec, Corpus, GameConfig};
    let mut accs = Vec::new();
    for round in 0..scale.rounds {
        let corpus = Corpus::poj(scale.classes, scale.per_class, 60 + round as u64);
        let cfg =
            GameConfig::game0(ClassifierSpec::histogram(model), round as u64).with_game(game, evader);
        accs.push(play(&corpus, &cfg).accuracy);
    }
    mean(&accs)
}

/// Runs the Figure 8/9/11 grid: every evader against every model on the
/// histogram embedding, in the given game, and prints the table. The
/// evader × model cells fan out on the [`yali_core::engine`]; each cell is
/// deterministic, so the table is identical at every thread count.
pub fn run_evader_model_grid(game: yali_core::Game, scale: &Scale) {
    use yali_core::Transformer;
    use yali_ml::ModelKind;
    let header: Vec<String> = std::iter::once("evader".to_string())
        .chain(ModelKind::ALL.iter().map(|m| m.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let points: Vec<(Transformer, ModelKind)> = Transformer::EVADERS
        .iter()
        .flat_map(|&e| ModelKind::ALL.iter().map(move |&m| (e, m)))
        .collect();
    let accs = yali_core::par_map(&points, |_, &(evader, model)| {
        sweep_cell(game, evader, model, scale)
    });
    let mut rows = Vec::new();
    for (ei, evader) in Transformer::EVADERS.iter().enumerate() {
        let mut cells = vec![evader.name().to_string()];
        for mi in 0..ModelKind::ALL.len() {
            cells.push(pct(accs[ei * ModelKind::ALL.len() + mi]));
        }
        rows.push(cells);
    }
    print_table(&format!("{game} — evaders × models"), &header_refs, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.805), "80.5%");
    }
}
