//! Metric-name grammar audit.
//!
//! Fleet merging (`yali-prof merge`, `RunReport::merge`) joins counters and
//! histograms from many processes *by name*, so the names themselves are a
//! wire format: `crate.subsystem.metric` — 2 to 4 dot-separated segments,
//! each `[a-z][a-z0-9_]*`. Two call sites that drift into different
//! spellings of the same metric silently fork a series; a name outside the
//! grammar can collide with another crate's namespace after a merge. The
//! grammar is documented in DESIGN.md ("Metric naming grammar").
//!
//! Two layers of enforcement:
//! * a source audit over every `count!` / `record!` / `span!` /
//!   `span_attr!` / `counter(` / `histogram(` / `trace_region(` literal in
//!   the workspace, so even names on paths no test exercises are checked;
//! * a runtime check that everything a representative game run actually
//!   registers in the global registry obeys the same grammar.

use std::collections::BTreeSet;
use std::path::Path;

/// True when `name` matches `crate.subsystem.metric`: 2–4 dot-separated
/// segments, each starting with a lowercase letter and continuing with
/// lowercase letters, digits, or underscores.
fn name_is_well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    if !(2..=4).contains(&segments.len()) {
        return false;
    }
    segments.iter().all(|seg| {
        let mut chars = seg.chars();
        matches!(chars.next(), Some('a'..='z'))
            && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
    })
}

/// Pulls the first string literal out of `line` after each metric-naming
/// call site. Macro *definitions* (which interpolate `$name`) have no
/// literal after the paren and are skipped naturally.
fn extract_names(line: &str, out: &mut BTreeSet<String>) {
    const SITES: [&str; 7] = [
        "count!(\"",
        "record!(\"",
        "span!(\"",
        "span_attr!(\"",
        "counter(\"",
        "histogram(\"",
        "trace_region(\"",
    ];
    for site in SITES {
        let mut rest = line;
        while let Some(at) = rest.find(site) {
            rest = &rest[at + site.len()..];
            if let Some(end) = rest.find('"') {
                out.insert(rest[..end].to_string());
                rest = &rest[end..];
            }
        }
    }
}

fn walk(dir: &Path, out: &mut BTreeSet<String>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).expect("readable source file");
            for line in text.lines() {
                extract_names(line, out);
            }
        }
    }
}

#[test]
fn every_metric_name_in_the_source_tree_matches_the_grammar() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let mut names = BTreeSet::new();
    walk(&crates, &mut names);
    assert!(
        names.len() >= 40,
        "source audit found only {} metric names — extraction broke?",
        names.len()
    );
    let bad: Vec<&String> = names.iter().filter(|n| !name_is_well_formed(n)).collect();
    assert!(
        bad.is_empty(),
        "metric names violating the crate.subsystem.metric grammar \
         (2-4 segments of [a-z][a-z0-9_]*): {bad:?}"
    );
}

#[test]
fn every_name_a_game_run_registers_matches_the_grammar() {
    yali_obs::set_enabled(true);
    let corpus = yali_core::Corpus::poj(2, 3, 7);
    let cfg = yali_core::GameConfig::game0(
        yali_core::ClassifierSpec::histogram(yali_ml::ModelKind::Rf),
        7,
    );
    let _ = yali_core::play(&corpus, &cfg);

    let reg = yali_obs::Registry::global();
    let mut seen = 0usize;
    for (name, _) in reg.counters() {
        assert!(name_is_well_formed(&name), "counter name {name:?} off-grammar");
        seen += 1;
    }
    for h in reg.histograms() {
        assert!(
            name_is_well_formed(&h.name),
            "histogram name {:?} off-grammar",
            h.name
        );
        seen += 1;
    }
    assert!(seen >= 10, "game run registered only {seen} series — obs off?");
}

#[test]
fn the_grammar_rejects_the_shapes_merging_would_alias() {
    for good in ["serve.requests", "ml.gemm.f32.calls", "par.busy_ns"] {
        assert!(name_is_well_formed(good), "{good:?} should be accepted");
    }
    for bad in [
        "requests",               // 1 segment: no crate namespace
        "a.b.c.d.e",              // 5 segments
        "Serve.requests",         // uppercase
        "serve..requests",        // empty segment
        "serve.2nd",              // segment starts with a digit
        "serve.batch-rows",       // hyphen
        "serve.requests ",        // stray whitespace
    ] {
        assert!(!name_is_well_formed(bad), "{bad:?} should be rejected");
    }
}
