//! Property tests: every obfuscation pass preserves the behaviour of
//! randomly generated MiniC programs (Definition 2.4's evader contract).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yali_ir::interp::{run, ExecConfig, Val};

fn program(a: i64, b: i64, bound: u8, use_switch: bool) -> String {
    let tail = if use_switch {
        "switch (acc % 3) { case 0: acc = acc + 5; break; case 1: acc = acc * 2; break; default: acc = acc - 7; }"
    } else {
        "if (acc % 2 == 0) { acc = acc / 2; } else { acc = acc + 3; }"
    };
    format!(
        "int f(int x) {{ int acc = x; for (int i = 0; i < {bound}; i++) {{ acc = acc * {a} + {b}; {tail} }} return acc; }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ir_passes_preserve_behaviour(
        a in 1i64..6,
        b in -9i64..9,
        bound in 1u8..10,
        use_switch in any::<bool>(),
        x in -100i64..100,
        seed in 0u64..1000,
    ) {
        let src = program(a, b, bound, use_switch);
        let m0 = yali_minic::compile(&src).expect("compiles");
        let args = [Val::Int(x)];
        let reference = run(&m0, "f", &args, &[], &ExecConfig::default()).expect("runs").ret;
        for pass in yali_obf::IrObf::ALL {
            let mut m = m0.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            pass.apply(&mut m, &mut rng);
            yali_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("{pass} produced invalid IR: {e}"));
            let got = run(&m, "f", &args, &[], &ExecConfig::default()).expect("runs").ret;
            prop_assert_eq!(got, reference, "{} diverged on {} (x={})", pass, src, x);
        }
    }

    #[test]
    fn obfuscation_plus_o3_preserves_behaviour(
        a in 1i64..5,
        bound in 1u8..8,
        x in -50i64..50,
        seed in 0u64..100,
    ) {
        // The Game-3 composition: obfuscate, then the classifier optimizes.
        let src = program(a, 1, bound, true);
        let m0 = yali_minic::compile(&src).expect("compiles");
        let args = [Val::Int(x)];
        let reference = run(&m0, "f", &args, &[], &ExecConfig::default()).expect("runs").ret;
        let mut m = m0.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        yali_obf::ollvm(&mut m, &mut rng);
        yali_opt::optimize(&mut m, yali_opt::OptLevel::O3);
        yali_ir::verify_module(&m).expect("verifies");
        let got = run(&m, "f", &args, &[], &ExecConfig::default()).expect("runs").ret;
        prop_assert_eq!(got, reference);
    }
}
