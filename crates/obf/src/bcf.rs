//! Bogus control flow (`ollvm -bcf`).
//!
//! Selected basic blocks are guarded by an *opaque predicate*: a condition
//! that always evaluates true at run time but that static analysis cannot
//! fold. The false edge leads to a bogus block of junk arithmetic. The
//! classic O-LLVM predicate `y < 10 || x * (x + 1) % 2 == 0` is used, with
//! `x` and `y` read from a two-element stack slot that `mem2reg` cannot
//! promote — which is exactly why the paper finds bcf "cannot be easily
//! optimized" (Section 4.4).

use rand::Rng;
use yali_ir::{BlockId, Cmp, Function, Inst, InstId, Module, Op, Type, Value};

/// Applies bogus control flow to each function. Each block is guarded with
/// probability `prob`. Returns the number of bogus branches inserted.
pub fn run_module<R: Rng>(m: &mut Module, rng: &mut R, prob: f64) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(|f| run(f, rng, prob))
        .sum()
}

/// Applies bogus control flow to one function.
pub fn run<R: Rng>(f: &mut Function, rng: &mut R, prob: f64) -> usize {
    if f.is_declaration() {
        return 0;
    }
    let entry = f.entry();
    // The opaque slot: two i64 cells, seeded with small values. A
    // two-element alloca is not promotable, keeping the predicate opaque.
    let slot = f.new_inst(Inst::new(
        Op::Alloca,
        Type::ptr(Type::I64),
        vec![Value::const_int(Type::I64, 2)],
    ));
    let store_x = f.new_inst(Inst::new(
        Op::Store,
        Type::Void,
        vec![
            Value::const_int(Type::I64, rng.gen_range(1..50)),
            Value::Inst(slot),
        ],
    ));
    let idx1 = f.new_inst(Inst::new(
        Op::Gep,
        Type::ptr(Type::I64),
        vec![Value::Inst(slot), Value::const_int(Type::I64, 1)],
    ));
    let store_y = f.new_inst(Inst::new(
        Op::Store,
        Type::Void,
        vec![Value::const_int(Type::I64, rng.gen_range(0..10)), Value::Inst(idx1)],
    ));
    f.insert_inst(entry, 0, slot);
    f.insert_inst(entry, 1, store_x);
    f.insert_inst(entry, 2, idx1);
    f.insert_inst(entry, 3, store_y);

    let mut n = 0;
    let targets: Vec<BlockId> = f.block_order().to_vec();
    for b in targets {
        if !rng.gen_bool(prob) {
            continue;
        }
        // Split b: phis (plus, for the entry, the opaque setup) stay in b;
        // the body and terminator move to `cont`.
        let head_len = {
            let insts = &f.block(b).insts;
            let mut k = 0;
            while k < insts.len() && f.inst(insts[k]).op == Op::Phi {
                k += 1;
            }
            if b == entry {
                k = k.max(4); // keep the opaque setup in the entry head
            }
            k
        };
        if f.block(b).insts.len() <= head_len {
            continue;
        }
        let tail: Vec<InstId> = f.block(b).insts[head_len..].to_vec();
        f.block_mut(b).insts.truncate(head_len);
        let cont = f.add_block();
        f.block_mut(cont).insts = tail;
        for s in f.successors(cont) {
            f.retarget_phis(s, b, cont);
        }
        // The bogus block: junk arithmetic over the opaque slot, looping
        // back to cont.
        let bogus = f.add_block();
        {
            let x = f.new_inst(Inst::new(Op::Load, Type::I64, vec![Value::Inst(slot)]));
            let j1 = f.new_inst(Inst::new(
                Op::Mul,
                Type::I64,
                vec![Value::Inst(x), Value::const_int(Type::I64, rng.gen_range(2..9))],
            ));
            let j2 = f.new_inst(Inst::new(
                Op::Add,
                Type::I64,
                vec![Value::Inst(j1), Value::const_int(Type::I64, rng.gen_range(1..100))],
            ));
            let st = f.new_inst(Inst::new(
                Op::Store,
                Type::Void,
                vec![Value::Inst(j2), Value::Inst(slot)],
            ));
            let mut br = Inst::new(Op::Br, Type::Void, vec![]);
            br.blocks = vec![cont];
            let br = f.new_inst(br);
            for id in [x, j1, j2, st, br] {
                f.block_mut(bogus).insts.push(id);
            }
        }
        // The opaque predicate at the end of b:
        //   x = load slot; t = x * (x + 1); even = t % 2 == 0  (always true)
        let x = f.new_inst(Inst::new(Op::Load, Type::I64, vec![Value::Inst(slot)]));
        let xp1 = f.new_inst(Inst::new(
            Op::Add,
            Type::I64,
            vec![Value::Inst(x), Value::const_int(Type::I64, 1)],
        ));
        let t = f.new_inst(Inst::new(
            Op::Mul,
            Type::I64,
            vec![Value::Inst(x), Value::Inst(xp1)],
        ));
        let rem = f.new_inst(Inst::new(
            Op::SRem,
            Type::I64,
            vec![Value::Inst(t), Value::const_int(Type::I64, 2)],
        ));
        let mut even = Inst::new(
            Op::ICmp,
            Type::I1,
            vec![Value::Inst(rem), Value::const_int(Type::I64, 0)],
        );
        even.pred = Some(Cmp::Eq);
        let even = f.new_inst(even);
        let mut condbr = Inst::new(Op::CondBr, Type::Void, vec![Value::Inst(even)]);
        condbr.blocks = vec![cont, bogus];
        let condbr = f.new_inst(condbr);
        for id in [x, xp1, t, rem, even, condbr] {
            f.block_mut(b).insts.push(id);
        }
        n += 1;
    }
    if n == 0 {
        // No block selected: remove the opaque setup again.
        f.remove_from_block(entry, store_y);
        f.remove_from_block(entry, idx1);
        f.remove_from_block(entry, store_x);
        f.remove_from_block(entry, slot);
    }
    f.compact();
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn bcfd(src: &str, seed: u64) -> (Module, Module) {
        let m0 = yali_minic::compile(src).expect("compile");
        let mut m1 = m0.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        run_module(&mut m1, &mut rng, 0.8);
        verify_module(&m1).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m1)));
        (m0, m1)
    }

    const SRC: &str = r#"
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i; } else { s -= 1; }
            }
            return s;
        }
    "#;

    #[test]
    fn adds_blocks_and_preserves_semantics() {
        let (m0, m1) = bcfd(SRC, 5);
        assert!(
            m1.function("f").unwrap().num_blocks() > m0.function("f").unwrap().num_blocks()
        );
        for n in [0i64, 1, 10, 33] {
            let a = exec(&m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "f({n})");
        }
    }

    #[test]
    fn bogus_blocks_never_execute_junk_into_results() {
        // The bogus path would corrupt the opaque slot if taken; identical
        // outputs across many inputs demonstrate it stays dead.
        let (m0, m1) = bcfd(SRC, 11);
        for n in 0..20i64 {
            let a = exec(&m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret);
        }
    }

    #[test]
    fn resists_o3_normalization() {
        // The paper's RQ4 finding: bcf survives optimization because the
        // opaque predicate cannot be folded.
        let (_, mut m1) = bcfd(SRC, 23);
        let blocks_before = m1.function("f").unwrap().num_blocks();
        yali_opt::optimize(&mut m1, yali_opt::OptLevel::O3);
        verify_module(&m1).unwrap();
        let blocks_after = m1.function("f").unwrap().num_blocks();
        let m0 = yali_minic::compile(SRC).unwrap();
        let m0_opt = yali_opt::optimized(&m0, yali_opt::OptLevel::O3);
        assert!(
            blocks_after > m0_opt.function("f").unwrap().num_blocks(),
            "bcf was optimized away ({blocks_before} -> {blocks_after})"
        );
        let out = exec(&m1, "f", &[Val::Int(12)], &[], &ExecConfig::default()).unwrap();
        let ref_out = exec(&m0, "f", &[Val::Int(12)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, ref_out.ret);
    }

    #[test]
    fn zero_probability_is_identity_semantically() {
        let m0 = yali_minic::compile(SRC).unwrap();
        let mut m1 = m0.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(run_module(&mut m1, &mut rng, 0.0), 0);
        // The opaque slot is removed again when nothing was selected.
        assert_eq!(m1.num_insts(), m0.num_insts());
    }
}
