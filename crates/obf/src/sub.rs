//! Instruction substitution (`ollvm -sub`).
//!
//! Replaces integer arithmetic and logic instructions with longer,
//! semantically equivalent sequences, following O-LLVM's catalogue
//! (Junod et al.):
//!
//! - `a + b` → `a - (0 - b)`  or  `(a ^ b) + ((a & b) << 1)`
//! - `a - b` → `a + (0 - b)`
//! - `a ^ b` → `(a | b) & ~(a & b)`
//! - `a | b` → `(a & b) | (a ^ b)`
//! - `a & b` → `~(~a | ~b)`

use rand::Rng;
use yali_ir::{Function, Inst, InstId, Module, Op, Type, Value};

/// Runs instruction substitution with the given RNG. Every eligible
/// instruction is rewritten with probability `prob`. Returns the number of
/// substitutions.
pub fn run_module<R: Rng>(m: &mut Module, rng: &mut R, prob: f64) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(|f| run(f, rng, prob))
        .sum()
}

/// Runs instruction substitution on one function.
pub fn run<R: Rng>(f: &mut Function, rng: &mut R, prob: f64) -> usize {
    let mut n = 0;
    let placed: Vec<(yali_ir::BlockId, InstId)> = f.iter_insts().collect();
    for (b, i) in placed {
        let inst = f.inst(i).clone();
        if !matches!(inst.op, Op::Add | Op::Sub | Op::Xor | Op::Or | Op::And) {
            continue;
        }
        if !inst.ty.is_int() || inst.ty == Type::I1 {
            continue;
        }
        if rng.gen::<f64>() > prob {
            continue;
        }
        let pos = f
            .block(b)
            .insts
            .iter()
            .position(|&x| x == i)
            .expect("inst in its block");
        let ty = inst.ty.clone();
        let (a, c) = (inst.args[0].clone(), inst.args[1].clone());
        let zero = Value::const_int(ty.clone(), 0);
        let minus1 = Value::const_int(ty.clone(), -1);
        // Helper to append a fresh instruction before `i` (order matters).
        let mut fresh = Vec::new();
        let mut emit = |f: &mut Function, op: Op, args: Vec<Value>| -> Value {
            let id = f.new_inst(Inst::new(op, ty.clone(), args));
            fresh.push(id);
            Value::Inst(id)
        };
        let replacement = match inst.op {
            Op::Add if rng.gen_bool(0.5) => {
                // a - (0 - b)
                let neg = emit(f, Op::Sub, vec![zero, c.clone()]);
                Inst::new(Op::Sub, ty.clone(), vec![a, neg])
            }
            Op::Add => {
                // (a ^ b) + ((a & b) << 1)
                let x = emit(f, Op::Xor, vec![a.clone(), c.clone()]);
                let and = emit(f, Op::And, vec![a, c]);
                let shl = emit(
                    f,
                    Op::Shl,
                    vec![and, Value::const_int(ty.clone(), 1)],
                );
                Inst::new(Op::Add, ty.clone(), vec![x, shl])
            }
            Op::Sub => {
                // a + (0 - b)
                let neg = emit(f, Op::Sub, vec![zero, c]);
                Inst::new(Op::Add, ty.clone(), vec![a, neg])
            }
            Op::Xor => {
                // (a | b) & ~(a & b)
                let or = emit(f, Op::Or, vec![a.clone(), c.clone()]);
                let and = emit(f, Op::And, vec![a, c]);
                let not = emit(f, Op::Xor, vec![and, minus1]);
                Inst::new(Op::And, ty.clone(), vec![or, not])
            }
            Op::Or => {
                // (a & b) | (a ^ b)
                let and = emit(f, Op::And, vec![a.clone(), c.clone()]);
                let x = emit(f, Op::Xor, vec![a, c]);
                Inst::new(Op::Or, ty.clone(), vec![and, x])
            }
            Op::And => {
                // ~(~a | ~b)
                let na = emit(f, Op::Xor, vec![a, minus1.clone()]);
                let nb = emit(f, Op::Xor, vec![c, minus1.clone()]);
                let or = emit(f, Op::Or, vec![na, nb]);
                Inst::new(Op::Xor, ty.clone(), vec![or, minus1])
            }
            _ => unreachable!(),
        };
        for (k, id) in fresh.iter().enumerate() {
            f.insert_inst(b, pos + k, *id);
        }
        *f.inst_mut(i) = replacement;
        n += 1;
    }
    if n > 0 {
        f.compact();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn subbed(src: &str, seed: u64) -> (Module, Module) {
        let m0 = yali_minic::compile(src).expect("compile");
        let mut m1 = m0.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = run_module(&mut m1, &mut rng, 1.0);
        assert!(n > 0, "nothing substituted");
        verify_module(&m1).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m1)));
        (m0, m1)
    }

    #[test]
    fn substitution_grows_code_and_preserves_semantics() {
        let src = "int f(int a, int b) { return (a + b) - (a & b) + (a | b) - (a ^ b); }";
        let (m0, m1) = subbed(src, 42);
        assert!(m1.num_insts() > m0.num_insts());
        for (a, b) in [(0i64, 0i64), (13, 7), (-5, 200), (i64::MAX, 1)] {
            let args = [Val::Int(a), Val::Int(b)];
            let r0 = exec(&m0, "f", &args, &[], &ExecConfig::default()).unwrap();
            let r1 = exec(&m1, "f", &args, &[], &ExecConfig::default()).unwrap();
            assert_eq!(r0.ret, r1.ret, "({a},{b})");
        }
    }

    #[test]
    fn substitution_changes_the_histogram() {
        let src = "int f(int a, int b) { return a + b; }";
        let (m0, m1) = subbed(src, 7);
        assert_ne!(yali_embed::histogram(&m0), yali_embed::histogram(&m1));
    }

    #[test]
    fn probability_zero_is_identity() {
        let mut m = yali_minic::compile("int f(int a) { return a + 1; }").unwrap();
        let before = m.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(run_module(&mut m, &mut rng, 0.0), 0);
        assert_eq!(m, before);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let src = "int f(int a, int b) { return a + b + (a & b); }";
        let (_, m1) = subbed(src, 99);
        let (_, m2) = subbed(src, 99);
        assert_eq!(
            yali_ir::print_module(&m1),
            yali_ir::print_module(&m2)
        );
    }

    #[test]
    fn o1_reverts_simple_substitutions() {
        // The normalization story (paper, Example 2.5): optimizing the
        // substituted code shrinks it back.
        let src = "int f(int a, int b) { return a + b; }";
        let (_, mut m1) = subbed(src, 3);
        let grown = m1.num_insts();
        yali_opt::optimize(&mut m1, yali_opt::OptLevel::O1);
        assert!(m1.num_insts() < grown, "{}", yali_ir::print_module(&m1));
        let out = exec(
            &m1,
            "f",
            &[Val::Int(40), Val::Int(2)],
            &[],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(42)));
    }
}
