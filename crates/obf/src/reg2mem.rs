//! Register demotion (`reg2mem`): the inverse of `mem2reg`.
//!
//! Every SSA value that flows across basic-block boundaries — including all
//! phis — is demoted to a stack slot in the entry block. The result is a
//! module where data only crosses blocks through memory, which is the
//! precondition for control-flow flattening (O-LLVM performs the same
//! demotion before `-fla` for the same reason: flattening destroys the
//! dominance relationships SSA values rely on).

use std::collections::HashMap;
use yali_ir::{BlockId, Function, Inst, InstId, Module, Op, Type, Value};

/// Demotes cross-block values in every definition. Returns the number of
/// slots introduced.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .sum()
}

/// Demotes cross-block values and phis in one function.
pub fn run(f: &mut Function) -> usize {
    let entry = f.entry();
    let mut slots = 0;

    // --- Phase 1: demote phis. ---
    loop {
        // Find one phi (mutation invalidates positions, so take them one at
        // a time).
        let mut found = None;
        'outer: for &b in f.block_order() {
            for &i in &f.block(b).insts {
                if f.inst(i).op == Op::Phi {
                    found = Some((b, i));
                    break 'outer;
                }
            }
        }
        let Some((b, phi)) = found else { break };
        let inst = f.inst(phi).clone();
        let slot = new_entry_slot(f, entry, inst.ty.clone());
        // Store each incoming value at the end of its predecessor.
        for (v, &pred) in inst.args.iter().zip(&inst.blocks) {
            let store = f.new_inst(Inst::new(
                Op::Store,
                Type::Void,
                vec![v.clone(), Value::Inst(slot)],
            ));
            let at = f.block(pred).insts.len().saturating_sub(1);
            f.insert_inst(pred, at, store);
        }
        // Replace the phi with a load at its own position.
        let pos = f
            .block(b)
            .insts
            .iter()
            .position(|&x| x == phi)
            .expect("phi in its block");
        let load = f.new_inst(Inst::new(Op::Load, inst.ty, vec![Value::Inst(slot)]));
        f.remove_from_block(b, phi);
        f.insert_inst(b, pos, load);
        f.replace_all_uses(phi, &Value::Inst(load));
        slots += 1;
    }

    // --- Phase 2: demote non-phi values used outside their block. ---
    let mut place: HashMap<InstId, BlockId> = HashMap::new();
    for (b, i) in f.iter_insts() {
        place.insert(i, b);
    }
    let mut cross: Vec<InstId> = Vec::new();
    for (b, i) in f.iter_insts() {
        for a in &f.inst(i).args {
            if let Value::Inst(d) = a {
                if place.get(d) == Some(&b) {
                    continue;
                }
                // Entry-block allocas stay: the flattened entry dominates
                // everything, so loads and stores through them stay legal.
                if f.inst(*d).op == Op::Alloca && place.get(d) == Some(&entry) {
                    continue;
                }
                if !cross.contains(d) {
                    cross.push(*d);
                }
            }
        }
    }
    for d in cross {
        let def_block = place[&d];
        let ty = f.inst(d).ty.clone();
        if ty.is_void() {
            continue;
        }
        let slot = new_entry_slot(f, entry, ty.clone());
        // Store right after the definition.
        let def_pos = f
            .block(def_block)
            .insts
            .iter()
            .position(|&x| x == d)
            .expect("def in its block");
        let store = f.new_inst(Inst::new(
            Op::Store,
            Type::Void,
            vec![Value::Inst(d), Value::Inst(slot)],
        ));
        f.insert_inst(def_block, def_pos + 1, store);
        // Replace remote uses with loads placed just before the user.
        let users: Vec<(BlockId, InstId)> = f
            .iter_insts()
            .filter(|&(ub, u)| {
                ub != def_block
                    && f.inst(u)
                        .args
                        .iter()
                        .any(|a| a.as_inst() == Some(d))
            })
            .collect();
        for (ub, u) in users {
            if u == store {
                continue;
            }
            let pos = f
                .block(ub)
                .insts
                .iter()
                .position(|&x| x == u)
                .expect("user in its block");
            let load = f.new_inst(Inst::new(Op::Load, ty.clone(), vec![Value::Inst(slot)]));
            f.insert_inst(ub, pos, load);
            let user = f.inst_mut(u);
            for a in &mut user.args {
                if a.as_inst() == Some(d) {
                    *a = Value::Inst(load);
                }
            }
        }
        slots += 1;
    }
    f.compact();
    slots
}

fn new_entry_slot(f: &mut Function, entry: BlockId, ty: Type) -> InstId {
    let alloca = f.new_inst(Inst::new(
        Op::Alloca,
        Type::ptr(ty),
        vec![Value::const_int(Type::I64, 1)],
    ));
    f.insert_inst(entry, 0, alloca);
    alloca
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    fn demoted(src: &str) -> (Module, Module) {
        let mut m = yali_minic::compile(src).expect("compile");
        yali_opt::optimize(&mut m, yali_opt::OptLevel::O1); // get SSA + phis
        let before = m.clone();
        run_module(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m)));
        (before, m)
    }

    #[test]
    fn phis_disappear() {
        let (before, after) = demoted(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
        );
        let count = |m: &Module, op: Op| -> usize {
            m.definitions()
                .flat_map(|f| f.iter_insts().map(move |(_, i)| f.inst(i).op))
                .filter(|&o| o == op)
                .count()
        };
        assert!(count(&before, Op::Phi) > 0, "precondition: SSA has phis");
        assert_eq!(count(&after, Op::Phi), 0);
        assert!(count(&after, Op::Alloca) > 0);
    }

    #[test]
    fn semantics_survive_demotion() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) { s += i * 3; } else { s -= i; }
                }
                return s;
            }
        "#;
        let (before, after) = demoted(src);
        for n in [0i64, 1, 9, 30] {
            let a = exec(&before, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&after, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "f({n})");
        }
    }

    #[test]
    fn no_cross_block_ssa_values_remain() {
        let (_, after) = demoted(
            "int f(int a, int b) { int r = a * b; if (r > 10) { r = r - a; } return r + b; }",
        );
        for func in after.definitions() {
            let mut place = std::collections::HashMap::new();
            for (b, i) in func.iter_insts() {
                place.insert(i, b);
            }
            for (b, i) in func.iter_insts() {
                for a in &func.inst(i).args {
                    if let Value::Inst(d) = a {
                        let db = place[d];
                        let is_entry_alloca =
                            func.inst(*d).op == Op::Alloca && db == func.entry();
                        assert!(
                            db == b || is_entry_alloca,
                            "cross-block value {d} in @{}\n{func}",
                            func.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mem2reg_round_trips() {
        let src = "int f(int n) { int s = 1; while (n > 1) { s = s * n; n = n - 1; } return s; }";
        let (_, mut demoted_m) = demoted(src);
        yali_opt::mem2reg::run_module(&mut demoted_m);
        verify_module(&demoted_m).unwrap();
        let out = exec(&demoted_m, "f", &[Val::Int(6)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(720)));
    }
}
