//! # yali-obf
//!
//! Code obfuscation for the yali reproduction of "A Game-Based Framework
//! to Compare Program Classifiers and Evaders" (CGO 2023) — the *evader*
//! side of the games.
//!
//! Two families are provided:
//!
//! - **IR-level passes** in the style of O-LLVM (Junod et al.):
//!   [`sub`] (instruction substitution), [`bcf`] (bogus control flow),
//!   [`fla`] (control-flow flattening, preceded by [`reg2mem`]), and
//!   [`ollvm`] (all three composed);
//! - **source-level transformations** after Zhang et al.: the 15 rewrites
//!   in [`source`] composed by the [`strategy`] searchers `rs`, `mcmc`,
//!   `drlsg`, and `ga`.
//!
//! Every transformation is semantics-preserving; the test suites check
//! behavioural equivalence under the reference interpreter.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! let mut m = yali_minic::compile(
//!     "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
//! )?;
//! let before = m.num_insts();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! yali_obf::ollvm(&mut m, &mut rng);
//! assert!(m.num_insts() > before);
//! yali_ir::verify_module(&m)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod bcf;
pub mod fla;
pub mod reg2mem;
pub mod source;
pub mod strategy;
pub mod sub;

pub use source::SourceTransform;
pub use strategy::{drlsg, evasion_score, ga, mcmc, rs};

use rand::Rng;
use yali_ir::Module;

/// Applies all three O-LLVM passes (`sub`, then `bcf`, then `fla`) — the
/// paper's `ollvm` evader.
pub fn ollvm<R: Rng>(m: &mut Module, rng: &mut R) {
    sub::run_module(m, rng, 0.7);
    bcf::run_module(m, rng, 0.3);
    fla::run_module(m);
}

/// An IR-level obfuscation pass selector, covering the O-LLVM side of the
/// paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrObf {
    /// `ollvm -sub`.
    Sub,
    /// `ollvm -bcf`.
    Bcf,
    /// `ollvm -fla`.
    Fla,
    /// All O-LLVM passes together.
    Ollvm,
}

impl IrObf {
    /// All IR-level passes.
    pub const ALL: [IrObf; 4] = [IrObf::Sub, IrObf::Bcf, IrObf::Fla, IrObf::Ollvm];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            IrObf::Sub => "sub",
            IrObf::Bcf => "bcf",
            IrObf::Fla => "fla",
            IrObf::Ollvm => "ollvm",
        }
    }

    /// Applies the pass in place.
    pub fn apply<R: Rng>(self, m: &mut Module, rng: &mut R) {
        match self {
            IrObf::Sub => {
                sub::run_module(m, rng, 0.9);
            }
            IrObf::Bcf => {
                bcf::run_module(m, rng, 0.4);
            }
            IrObf::Fla => {
                fla::run_module(m);
            }
            IrObf::Ollvm => ollvm(m, rng),
        }
    }
}

impl std::fmt::Display for IrObf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use yali_ir::interp::{run as exec, ExecConfig, Val};

    const SRC: &str = r#"
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i * 3; } else { s -= i; }
            }
            return s;
        }
    "#;

    #[test]
    fn every_ir_pass_verifies_and_preserves_semantics() {
        let m0 = yali_minic::compile(SRC).unwrap();
        for pass in IrObf::ALL {
            let mut m = m0.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            pass.apply(&mut m, &mut rng);
            yali_ir::verify_module(&m).unwrap_or_else(|e| panic!("{pass}: {e}"));
            for n in [0i64, 5, 17] {
                let a = exec(&m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
                let b = exec(&m, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
                assert_eq!(a.ret, b.ret, "{pass} diverges at n={n}");
            }
        }
    }

    #[test]
    fn ollvm_slows_programs_down() {
        // Figure 13's premise: obfuscated code is slower.
        let m0 = yali_minic::compile(SRC).unwrap();
        let mut m = m0.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        ollvm(&mut m, &mut rng);
        let a = exec(&m0, "f", &[Val::Int(40)], &[], &ExecConfig::default()).unwrap();
        let b = exec(&m, "f", &[Val::Int(40)], &[], &ExecConfig::default()).unwrap();
        assert!(b.cost > a.cost, "ollvm {} !> base {}", b.cost, a.cost);
    }

    #[test]
    fn names_are_the_papers() {
        let names: Vec<&str> = IrObf::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["sub", "bcf", "fla", "ollvm"]);
    }
}
