//! Search strategies that compose the 15 source transformations into
//! obfuscation sequences, after Zhang et al.:
//!
//! - [`rs`] — random search: a random permutation prefix, applied once;
//! - [`mcmc`] — Markov-chain Monte Carlo over sequences, favouring
//!   candidates whose embeddings sit far from the original;
//! - [`drlsg`] — greedy distance maximization (standing in for the deep-RL
//!   sequence generator; same objective, cheaper optimizer — see
//!   DESIGN.md's substitution table);
//! - [`ga`] — a genetic algorithm over transformation sequences.

use crate::source::SourceTransform;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use yali_minic::Program;

/// Applies one transformation defensively: the rewrite is kept only when
/// the result still type-checks (a handful of transforms are conservative
/// approximations that can bail out on exotic inputs).
fn apply_checked<R: Rng>(p: &mut Program, t: SourceTransform, rng: &mut R) -> bool {
    let mut candidate = p.clone();
    t.apply(&mut candidate, rng);
    if yali_minic::check(&candidate).is_ok() {
        *p = candidate;
        true
    } else {
        false
    }
}

/// The evasion score of a candidate: Euclidean distance between the opcode
/// histograms of the original and transformed programs (Zhang et al.'s
/// objective, instantiated with the paper's Figure 10 metric).
pub fn evasion_score(original: &Program, candidate: &Program) -> f64 {
    let h0 = yali_embed::histogram(&yali_minic::lower(original));
    let h1 = yali_embed::histogram(&yali_minic::lower(candidate));
    yali_embed::euclidean(&h0, &h1)
}

/// Random search: applies a random subset of the transformations, in a
/// random order, without repetition.
pub fn rs(p: &Program, seed: u64) -> Program {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seq: Vec<SourceTransform> = SourceTransform::ALL.to_vec();
    seq.shuffle(&mut rng);
    let take = rng.gen_range(4..=seq.len());
    let mut out = p.clone();
    for &t in seq.iter().take(take) {
        apply_checked(&mut out, t, &mut rng);
    }
    out
}

/// Markov-chain Monte Carlo: proposes single-transform extensions or
/// replacements of the current sequence and accepts by the Metropolis
/// rule on the evasion score.
pub fn mcmc(p: &Program, seed: u64, iterations: usize) -> Program {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut current = p.clone();
    let mut current_score = 0.0;
    let temperature = 2.0;
    for _ in 0..iterations {
        let t = *SourceTransform::ALL.choose(&mut rng).expect("non-empty");
        let mut candidate = current.clone();
        if !apply_checked(&mut candidate, t, &mut rng) {
            continue;
        }
        let score = evasion_score(p, &candidate);
        let accept = score >= current_score
            || rng.gen::<f64>() < ((score - current_score) / temperature).exp();
        if accept {
            current = candidate;
            current_score = score;
        }
    }
    current
}

/// Greedy distance maximization, the drlsg stand-in: at every step, apply
/// the transformation that most increases the embedding distance; stop
/// when no transformation helps.
pub fn drlsg(p: &Program, seed: u64, max_steps: usize) -> Program {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut current = p.clone();
    let mut current_score = 0.0;
    for _ in 0..max_steps {
        let mut best: Option<(f64, Program)> = None;
        for t in SourceTransform::ALL {
            let mut candidate = current.clone();
            if !apply_checked(&mut candidate, t, &mut rng) {
                continue;
            }
            let score = evasion_score(p, &candidate);
            if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                best = Some((score, candidate));
            }
        }
        match best {
            Some((score, candidate)) if score > current_score + 1e-9 => {
                current = candidate;
                current_score = score;
            }
            _ => break,
        }
    }
    current
}

/// Genetic algorithm over transformation sequences: tournament selection,
/// single-point crossover, point mutation; fitness is the evasion score.
pub fn ga(p: &Program, seed: u64, population: usize, generations: usize) -> Program {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let seq_len = 6;
    let random_seq = |rng: &mut ChaCha8Rng| -> Vec<SourceTransform> {
        (0..seq_len)
            .map(|_| *SourceTransform::ALL.choose(rng).expect("non-empty"))
            .collect()
    };
    let express = |seq: &[SourceTransform], rng: &mut ChaCha8Rng| -> Program {
        let mut out = p.clone();
        for &t in seq {
            apply_checked(&mut out, t, rng);
        }
        out
    };
    let mut pop: Vec<(Vec<SourceTransform>, Program, f64)> = (0..population.max(2))
        .map(|_| {
            let seq = random_seq(&mut rng);
            let prog = express(&seq, &mut rng);
            let score = evasion_score(p, &prog);
            (seq, prog, score)
        })
        .collect();
    for _ in 0..generations {
        let mut next = Vec::with_capacity(pop.len());
        // Elitism: keep the best individual.
        let best = pop
            .iter()
            .max_by(|a, b| a.2.total_cmp(&b.2))
            .expect("non-empty population")
            .clone();
        next.push(best);
        while next.len() < pop.len() {
            // Tournament selection of two parents.
            let pick = |rng: &mut ChaCha8Rng| -> &Vec<SourceTransform> {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if pop[a].2 >= pop[b].2 {
                    &pop[a].0
                } else {
                    &pop[b].0
                }
            };
            let pa = pick(&mut rng).clone();
            let pb = pick(&mut rng).clone();
            let cut = rng.gen_range(1..seq_len);
            let mut child: Vec<SourceTransform> = pa[..cut]
                .iter()
                .chain(pb[cut..].iter())
                .copied()
                .collect();
            if rng.gen_bool(0.3) {
                let k = rng.gen_range(0..child.len());
                child[k] = *SourceTransform::ALL.choose(&mut rng).expect("non-empty");
            }
            let prog = express(&child, &mut rng);
            let score = evasion_score(p, &prog);
            next.push((child, prog, score));
        }
        pop = next;
    }
    pop.into_iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .map(|(_, prog, _)| prog)
        .expect("non-empty population")
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};

    const SRC: &str = r#"
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0 && i > 3) { s = s + i * 5 + 7; }
            }
            return s;
        }
    "#;

    fn outputs_match(m0: &yali_ir::Module, m1: &yali_ir::Module) {
        for n in [0i64, 1, 8, 21] {
            let a = exec(m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(m1, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "n={n}");
        }
    }

    fn base() -> Program {
        let p = yali_minic::parse(SRC).unwrap();
        yali_minic::check(&p).unwrap();
        p
    }

    #[test]
    fn rs_preserves_semantics_and_changes_source() {
        let p = base();
        let q = rs(&p, 1234);
        yali_minic::check(&q).unwrap();
        assert_ne!(yali_minic::print(&p), yali_minic::print(&q));
        outputs_match(&yali_minic::lower(&p), &yali_minic::lower(&q));
    }

    #[test]
    fn mcmc_improves_score_over_nothing() {
        let p = base();
        let q = mcmc(&p, 5, 12);
        yali_minic::check(&q).unwrap();
        outputs_match(&yali_minic::lower(&p), &yali_minic::lower(&q));
        assert!(evasion_score(&p, &q) > 0.0);
    }

    #[test]
    fn drlsg_is_at_least_as_good_as_single_random_step() {
        let p = base();
        let q = drlsg(&p, 7, 4);
        yali_minic::check(&q).unwrap();
        outputs_match(&yali_minic::lower(&p), &yali_minic::lower(&q));
        let greedy = evasion_score(&p, &q);
        assert!(greedy > 0.0);
    }

    #[test]
    fn ga_produces_valid_high_scoring_programs() {
        let p = base();
        let q = ga(&p, 11, 4, 2);
        yali_minic::check(&q).unwrap();
        outputs_match(&yali_minic::lower(&p), &yali_minic::lower(&q));
        assert!(evasion_score(&p, &q) > 0.0);
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let p = base();
        assert_eq!(
            yali_minic::print(&rs(&p, 99)),
            yali_minic::print(&rs(&p, 99))
        );
        assert_ne!(
            yali_minic::print(&rs(&p, 99)),
            yali_minic::print(&rs(&p, 100))
        );
    }
}
