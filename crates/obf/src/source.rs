//! The 15 semantic-preserving source-to-source transformations of Zhang
//! et al. ("Challenging Machine Learning-based Clone Detectors via
//! Semantic-preserving Code Transformations"), reimplemented over the
//! MiniC AST.
//!
//! Each transformation is a small rewrite; the search strategies in
//! [`crate::strategy`] compose them into obfuscation sequences (`rs`,
//! `mcmc`, `drlsg`, `ga`).

use rand::Rng;
use yali_minic::ast::*;

/// One of the 15 source transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceTransform {
    /// `for` → `while`.
    ForToWhile,
    /// `while (c) { b }` → `if (c) { do { b } while (c); }`.
    WhileToDoWhile,
    /// `if (c) A else B` → `if (!c) B else A`.
    NegateCondition,
    /// `switch` → chain of `if`/`else`.
    SwitchToIf,
    /// Integer literals `c` → `(c - k) + k`.
    UnfoldConstants,
    /// Introduce a temporary for the right-hand side of assignments.
    IntroduceTemps,
    /// Append unreachable dead statements (`if (0) { … }`).
    DeadCode,
    /// Declare unused junk variables.
    JunkVariables,
    /// Swap operands of commutative operators.
    SwapCommutative,
    /// `a < b` → `b > a` (mirror comparisons).
    MirrorComparisons,
    /// `x = x + 1` → `x = x - (-1)` (arithmetic identities).
    ArithmeticIdentity,
    /// Split compound `&&` conditions into nested `if`s.
    SplitConjunctions,
    /// Wrap statement runs in redundant braces.
    ExtraBraces,
    /// Rename every local variable systematically.
    RenameVariables,
    /// Rotate independent declaration statements downwards.
    ReorderDeclarations,
}

impl SourceTransform {
    /// All 15 transformations.
    pub const ALL: [SourceTransform; 15] = [
        SourceTransform::ForToWhile,
        SourceTransform::WhileToDoWhile,
        SourceTransform::NegateCondition,
        SourceTransform::SwitchToIf,
        SourceTransform::UnfoldConstants,
        SourceTransform::IntroduceTemps,
        SourceTransform::DeadCode,
        SourceTransform::JunkVariables,
        SourceTransform::SwapCommutative,
        SourceTransform::MirrorComparisons,
        SourceTransform::ArithmeticIdentity,
        SourceTransform::SplitConjunctions,
        SourceTransform::ExtraBraces,
        SourceTransform::RenameVariables,
        SourceTransform::ReorderDeclarations,
    ];

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SourceTransform::ForToWhile => "for_to_while",
            SourceTransform::WhileToDoWhile => "while_to_dowhile",
            SourceTransform::NegateCondition => "negate_condition",
            SourceTransform::SwitchToIf => "switch_to_if",
            SourceTransform::UnfoldConstants => "unfold_constants",
            SourceTransform::IntroduceTemps => "introduce_temps",
            SourceTransform::DeadCode => "dead_code",
            SourceTransform::JunkVariables => "junk_variables",
            SourceTransform::SwapCommutative => "swap_commutative",
            SourceTransform::MirrorComparisons => "mirror_comparisons",
            SourceTransform::ArithmeticIdentity => "arithmetic_identity",
            SourceTransform::SplitConjunctions => "split_conjunctions",
            SourceTransform::ExtraBraces => "extra_braces",
            SourceTransform::RenameVariables => "rename_variables",
            SourceTransform::ReorderDeclarations => "reorder_declarations",
        }
    }

    /// Applies the transformation to `p` in place.
    pub fn apply<R: Rng>(self, p: &mut Program, rng: &mut R) {
        match self {
            SourceTransform::ForToWhile => for_each_block(p, &mut |b| for_to_while(b)),
            SourceTransform::WhileToDoWhile => for_each_block(p, &mut |b| while_to_dowhile(b)),
            SourceTransform::NegateCondition => for_each_stmt(p, &mut |s| negate_condition(s)),
            SourceTransform::SwitchToIf => for_each_stmt(p, &mut |s| switch_to_if(s)),
            SourceTransform::UnfoldConstants => {
                let k = rng.gen_range(1..16);
                for_each_expr(p, &mut |e| unfold_constant(e, k));
            }
            SourceTransform::IntroduceTemps => {
                let mut counter = 0;
                for func in &mut p.funcs {
                    introduce_temps(&mut func.body, &mut counter);
                }
            }
            SourceTransform::DeadCode => {
                let k = rng.gen_range(1..50);
                for func in &mut p.funcs {
                    func.body.stmts.insert(
                        0,
                        Stmt::If(
                            Expr::Int(0),
                            Block::new(vec![Stmt::ExprStmt(Expr::Call(
                                "print_int".into(),
                                vec![Expr::Int(k)],
                            ))]),
                            None,
                        ),
                    );
                }
            }
            #[allow(clippy::explicit_counter_loop)]
            SourceTransform::JunkVariables => {
                let mut idx = 0;
                let seedv = rng.gen_range(1..100);
                for func in &mut p.funcs {
                    func.body.stmts.insert(
                        0,
                        Stmt::DeclScalar(
                            format!("__junk{idx}"),
                            Ty::Int,
                            Some(Expr::bin(
                                BinOp::Mul,
                                Expr::Int(seedv),
                                Expr::Int(idx + 3),
                            )),
                        ),
                    );
                    idx += 1;
                }
            }
            SourceTransform::SwapCommutative => for_each_expr(p, &mut |e| swap_commutative(e)),
            SourceTransform::MirrorComparisons => for_each_expr(p, &mut |e| mirror_comparison(e)),
            SourceTransform::ArithmeticIdentity => {
                for_each_expr(p, &mut |e| arithmetic_identity(e))
            }
            SourceTransform::SplitConjunctions => for_each_stmt(p, &mut |s| split_conjunction(s)),
            SourceTransform::ExtraBraces => for_each_block(p, &mut |b| extra_braces(b)),
            SourceTransform::RenameVariables => rename_variables(p),
            SourceTransform::ReorderDeclarations => for_each_block(p, &mut |b| hoist_decls(b)),
        }
    }
}

fn for_each_block(p: &mut Program, f: &mut impl FnMut(&mut Block)) {
    fn walk(b: &mut Block, f: &mut impl FnMut(&mut Block)) {
        for s in &mut b.stmts {
            match s {
                Stmt::If(_, t, e) => {
                    walk(t, f);
                    if let Some(e) = e {
                        walk(e, f);
                    }
                }
                Stmt::While(_, body) | Stmt::DoWhile(body, _) | Stmt::For(_, _, _, body) => {
                    walk(body, f)
                }
                Stmt::Switch(_, cases, d) => {
                    for (_, cb) in cases {
                        walk(cb, f);
                    }
                    if let Some(d) = d {
                        walk(d, f);
                    }
                }
                Stmt::Block(inner) => walk(inner, f),
                _ => {}
            }
        }
        f(b);
    }
    for func in &mut p.funcs {
        walk(&mut func.body, f);
    }
}

fn for_each_stmt(p: &mut Program, f: &mut impl FnMut(&mut Stmt)) {
    for func in &mut p.funcs {
        visit_stmts_mut(&mut func.body, f);
    }
}

fn for_each_expr(p: &mut Program, f: &mut impl FnMut(&mut Expr)) {
    for func in &mut p.funcs {
        visit_stmts_mut(&mut func.body, &mut |s| {
            visit_exprs_in_stmt_mut(s, f);
        });
    }
}

/// `for (init; cond; step) { b }` → `{ init; while (cond) { b; step; } }`.
///
/// Skipped when the body contains a `continue` (the step would be skipped).
fn for_to_while(b: &mut Block) {
    for s in &mut b.stmts {
        let Stmt::For(init, cond, step, body) = s else { continue };
        if contains_continue(body) {
            continue;
        }
        let mut stmts = Vec::new();
        if let Some(i) = init.take() {
            stmts.push(*i);
        }
        let mut loop_body = body.clone();
        if let Some(st) = step.take() {
            loop_body.stmts.push(*st);
        }
        stmts.push(Stmt::While(
            cond.take().unwrap_or(Expr::Int(1)),
            loop_body,
        ));
        *s = Stmt::Block(Block::new(stmts));
    }
}

/// True if the block contains a `continue` not nested in an inner loop.
fn contains_continue(b: &Block) -> bool {
    b.stmts.iter().any(|s| match s {
        Stmt::Continue => true,
        Stmt::If(_, t, e) => {
            contains_continue(t) || e.as_ref().map(contains_continue).unwrap_or(false)
        }
        Stmt::Switch(_, cases, d) => {
            cases.iter().any(|(_, cb)| contains_continue(cb))
                || d.as_ref().map(contains_continue).unwrap_or(false)
        }
        Stmt::Block(inner) => contains_continue(inner),
        _ => false, // inner loops capture their own continues
    })
}

/// `while (c) { b }` → `if (c) { do { b } while (c); }`.
///
/// Skipped when the condition is impure (calls) or the body contains
/// `break`/`continue` (their targets would change subtly with duplicated
/// conditions elsewhere; the guard keeps this rewrite airtight).
fn while_to_dowhile(b: &mut Block) {
    for s in &mut b.stmts {
        let Stmt::While(cond, body) = s else { continue };
        if !expr_is_pure(cond) {
            continue;
        }
        let dw = Stmt::DoWhile(body.clone(), cond.clone());
        *s = Stmt::If(cond.clone(), Block::new(vec![dw]), None);
    }
}

fn expr_is_pure(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => true,
        Expr::Index(_, i) => expr_is_pure(i),
        Expr::Unary(_, a) | Expr::Cast(_, a) => expr_is_pure(a),
        Expr::Binary(_, a, b) => expr_is_pure(a) && expr_is_pure(b),
        Expr::Call(..) => false,
    }
}

/// `if (c) A else B` → `if (!c) B else A`.
fn negate_condition(s: &mut Stmt) {
    if let Stmt::If(c, t, Some(e)) = s {
        let nc = Expr::Unary(UnOp::Not, Box::new(c.clone()));
        *s = Stmt::If(nc, e.clone(), Some(t.clone()));
    }
}

/// `switch` → `if`/`else` chain. Always applicable (cases are distinct and
/// MiniC switches do not fall through).
fn switch_to_if(s: &mut Stmt) {
    let Stmt::Switch(scrut, cases, default) = s else { return };
    if !expr_is_pure(scrut) || cases.is_empty() {
        return;
    }
    let mut chain = default.clone().map(Stmt::Block).map(|d| Block::new(vec![d]));
    for (v, body) in cases.iter().rev() {
        let cond = Expr::bin(BinOp::Eq, scrut.clone(), Expr::Int(*v));
        let blk = body.clone();
        chain = Some(Block::new(vec![Stmt::If(cond, blk, chain)]));
    }
    *s = Stmt::Block(chain.unwrap_or_default());
}

/// `c` → `(c - k) + k` for non-trivial integer literals.
fn unfold_constant(e: &mut Expr, k: i64) {
    if let Expr::Int(v) = e {
        let v = *v;
        // Leave small structural constants (0, 1) alone: judges' code uses
        // them for control, and unfoldings of every literal explode sizes.
        if v.abs() <= 1 || v.checked_sub(k).is_none() {
            return;
        }
        *e = Expr::bin(BinOp::Add, Expr::Int(v - k), Expr::Int(k));
    }
}

/// `lv = big_expr;` → `int t = big_expr; lv = t;` for int-typed RHS — we
/// conservatively only touch assignments whose RHS is an integer-only
/// binary expression of pure operands.
fn introduce_temps(b: &mut Block, counter: &mut usize) {
    let mut out = Vec::with_capacity(b.stmts.len());
    for mut s in std::mem::take(&mut b.stmts) {
        // Recurse first.
        match &mut s {
            Stmt::If(_, t, e) => {
                introduce_temps(t, counter);
                if let Some(e) = e {
                    introduce_temps(e, counter);
                }
            }
            Stmt::While(_, body) | Stmt::DoWhile(body, _) | Stmt::For(_, _, _, body) => {
                introduce_temps(body, counter)
            }
            Stmt::Switch(_, cases, d) => {
                for (_, cb) in cases {
                    introduce_temps(cb, counter);
                }
                if let Some(d) = d {
                    introduce_temps(d, counter);
                }
            }
            Stmt::Block(inner) => introduce_temps(inner, counter),
            _ => {}
        }
        if let Stmt::Assign(lv, e) = &s {
            if is_int_arith(e) && expr_is_pure(e) {
                let name = format!("__t{counter}");
                *counter += 1;
                out.push(Stmt::DeclScalar(name.clone(), Ty::Int, Some(e.clone())));
                out.push(Stmt::Assign(lv.clone(), Expr::Var(name)));
                continue;
            }
        }
        out.push(s);
    }
    b.stmts = out;
}

fn is_int_arith(e: &Expr) -> bool {
    match e {
        Expr::Binary(op, a, b) => {
            !op.is_comparison()
                && !op.is_logical()
                && is_int_leaf(a)
                && is_int_leaf(b)
        }
        _ => false,
    }
}

fn is_int_leaf(e: &Expr) -> bool {
    matches!(e, Expr::Int(_) | Expr::Var(_)) || is_int_arith(e)
    // Note: Var of float type would change semantics; the caller guards by
    // only rewriting assignments, where sema re-checks... we are stricter:
}

/// Swap operands of `+`, `*`, `&`, `|`, `^` when both sides are pure.
fn swap_commutative(e: &mut Expr) {
    if let Expr::Binary(op, a, b) = e {
        if matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
        ) && expr_is_pure(a)
            && expr_is_pure(b)
        {
            std::mem::swap(a, b);
        }
    }
}

/// `a < b` → `b > a`, etc.
fn mirror_comparison(e: &mut Expr) {
    if let Expr::Binary(op, a, b) = e {
        if expr_is_pure(a) && expr_is_pure(b) {
            let mirrored = match op {
                BinOp::Lt => Some(BinOp::Gt),
                BinOp::Le => Some(BinOp::Ge),
                BinOp::Gt => Some(BinOp::Lt),
                BinOp::Ge => Some(BinOp::Le),
                _ => None,
            };
            if let Some(m) = mirrored {
                *op = m;
                std::mem::swap(a, b);
            }
        }
    }
}

/// `x + c` → `x - (-c)` for integer literal c.
fn arithmetic_identity(e: &mut Expr) {
    if let Expr::Binary(BinOp::Add, _, b) = e {
        if let Expr::Int(c) = **b {
            if c != i64::MIN && c != 0 {
                let Expr::Binary(_, a, _) = e.clone() else { return };
                *e = Expr::bin(BinOp::Sub, *a, Expr::Int(-c));
            }
        }
    }
}

/// `if (a && b) { T }` (no else) → `if (a) { if (b) { T } }`.
fn split_conjunction(s: &mut Stmt) {
    if let Stmt::If(Expr::Binary(BinOp::And, a, b), t, None) = s {
        let inner = Stmt::If((**b).clone(), t.clone(), None);
        *s = Stmt::If((**a).clone(), Block::new(vec![inner]), None);
    }
}

/// Wrap each trailing half of a block in redundant braces.
fn extra_braces(b: &mut Block) {
    if b.stmts.len() >= 4 {
        let tail = b.stmts.split_off(b.stmts.len() / 2);
        // Declarations must stay visible to later statements; only wrap a
        // tail free of declarations.
        if tail
            .iter()
            .all(|s| !matches!(s, Stmt::DeclScalar(..) | Stmt::DeclArray(..)))
        {
            b.stmts.push(Stmt::Block(Block::new(tail)));
        } else {
            b.stmts.extend(tail);
        }
    }
}

/// Systematically renames every local variable and parameter.
fn rename_variables(p: &mut Program) {
    for func in &mut p.funcs {
        let mut map: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        let mut next = 0usize;
        let mut fresh = |old: &str, map: &mut std::collections::HashMap<String, String>| {
            let new = format!("v{next}_{}", old.len());
            next += 1;
            map.insert(old.to_string(), new.clone());
            new
        };
        for param in &mut func.params {
            param.name = fresh(&param.name, &mut map);
        }
        visit_stmts_mut(&mut func.body, &mut |s| {
            match s {
                Stmt::DeclScalar(n, _, _) | Stmt::DeclArray(n, _, _) => {
                    // A redeclared (shadowing) name keeps one mapping — the
                    // program stays well-formed because the rename is
                    // injective per name, not per scope.
                    if !map.contains_key(n) {
                        let renamed = fresh(n, &mut map);
                        *n = renamed;
                    } else {
                        *n = map[n.as_str()].clone();
                    }
                }
                Stmt::Assign(LValue::Var(n) | LValue::Index(n, _), _) => {
                    if let Some(r) = map.get(n.as_str()) {
                        *n = r.clone();
                    }
                }
                _ => {}
            }
            visit_exprs_in_stmt_mut(s, &mut |e| match e {
                Expr::Var(n) | Expr::Index(n, _) => {
                    if let Some(r) = map.get(n.as_str()) {
                        *n = r.clone();
                    }
                }
                _ => {}
            });
        });
    }
}

/// Moves declarations without initializers to the top of their block.
fn hoist_decls(b: &mut Block) {
    let (decls, rest): (Vec<Stmt>, Vec<Stmt>) = std::mem::take(&mut b.stmts)
        .into_iter()
        .partition(|s| matches!(s, Stmt::DeclScalar(_, _, None)));
    b.stmts = decls;
    b.stmts.extend(rest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use yali_ir::interp::{run as exec, ExecConfig, Val};

    const SRC: &str = r#"
        int classify(int x) {
            int r = 0;
            switch (x % 4) {
                case 0: r = 10; break;
                case 1: r = 20; break;
                default: r = 30;
            }
            return r;
        }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0 && i > 2) { s = s + classify(i) + 7; }
            }
            while (s > 100) { s = s - 13; }
            return s;
        }
    "#;

    fn outputs(m: &yali_ir::Module, n: i64) -> Option<yali_ir::interp::Val> {
        exec(m, "f", &[Val::Int(n)], &[], &ExecConfig::default())
            .unwrap()
            .ret
    }

    #[test]
    fn every_transform_preserves_semantics() {
        let base = yali_minic::parse(SRC).unwrap();
        yali_minic::check(&base).unwrap();
        let m0 = yali_minic::lower(&base);
        for t in SourceTransform::ALL {
            let mut p = base.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            t.apply(&mut p, &mut rng);
            yali_minic::check(&p).unwrap_or_else(|e| {
                panic!("{}: output fails sema: {e}\n{}", t.name(), yali_minic::print(&p))
            });
            let m1 = yali_minic::lower(&p);
            yali_ir::verify_module(&m1)
                .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            for n in [0i64, 3, 10, 25] {
                assert_eq!(
                    outputs(&m0, n),
                    outputs(&m1, n),
                    "{} diverges at n={n}\n{}",
                    t.name(),
                    yali_minic::print(&p)
                );
            }
        }
    }

    #[test]
    fn transformed_source_round_trips_through_printer() {
        let base = yali_minic::parse(SRC).unwrap();
        for t in SourceTransform::ALL {
            let mut p = base.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            t.apply(&mut p, &mut rng);
            let text = yali_minic::print(&p);
            let again = yali_minic::parse(&text)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", t.name()));
            assert_eq!(p, again, "{} breaks printer round-trip", t.name());
        }
    }

    #[test]
    fn for_to_while_eliminates_fors() {
        let mut p = yali_minic::parse("int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        SourceTransform::ForToWhile.apply(&mut p, &mut rng);
        let text = yali_minic::print(&p);
        assert!(!text.contains("for ("), "{text}");
        assert!(text.contains("while ("));
    }

    #[test]
    fn for_with_continue_is_left_alone() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i == 2) { continue; } s += i; } return s; }";
        let mut p = yali_minic::parse(src).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        SourceTransform::ForToWhile.apply(&mut p, &mut rng);
        assert!(yali_minic::print(&p).contains("for ("));
    }

    #[test]
    fn switch_to_if_eliminates_switches() {
        let mut p = yali_minic::parse(SRC).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        SourceTransform::SwitchToIf.apply(&mut p, &mut rng);
        assert!(!yali_minic::print(&p).contains("switch"));
    }

    #[test]
    fn rename_changes_all_names() {
        let mut p =
            yali_minic::parse("int f(int alpha) { int beta = alpha + 1; return beta; }").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        SourceTransform::RenameVariables.apply(&mut p, &mut rng);
        let text = yali_minic::print(&p);
        assert!(!text.contains("alpha") && !text.contains("beta"), "{text}");
    }

    #[test]
    fn unfold_constants_grows_expressions() {
        let mut p = yali_minic::parse("int f() { return 40 + 2; }").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        SourceTransform::UnfoldConstants.apply(&mut p, &mut rng);
        let m = yali_minic::lower(&p);
        let out = exec(&m, "f", &[], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, Some(Val::Int(42)));
    }
}
