//! Control-flow flattening (`ollvm -fla`).
//!
//! Rewrites every function into the classic dispatcher shape: a new entry
//! block stores an initial state, a dispatch block switches on the state,
//! and every original block ends by storing its successor's state and
//! jumping back to the dispatcher. Register demotion ([`crate::reg2mem`])
//! runs first, because flattening destroys the dominance relations that
//! cross-block SSA values require.
//!
//! The paper observes (Section 4.1, 4.3) that flattening "barely changes
//! the histogram of instructions" by itself, yet *optimizing* flattened
//! code changes the instruction mix substantially (Section 4.4) — both
//! effects emerge from this implementation.

use yali_ir::{BlockId, Function, Inst, InstId, Module, Op, Type, Value};

/// Flattens every definition with at least `min_blocks` blocks. Returns
/// the number of functions flattened.
pub fn run_module(m: &mut Module) -> usize {
    m.functions
        .iter_mut()
        .filter(|f| !f.is_declaration())
        .map(run)
        .filter(|&changed| changed)
        .count()
}

/// Flattens one function. Returns `true` if the function was transformed.
pub fn run(f: &mut Function) -> bool {
    if f.is_declaration() || f.num_blocks() < 3 {
        return false;
    }

    // Step 1: carve out a fresh entry holding every constant-count alloca
    // of the old entry (they must dominate all flattened blocks). This
    // runs *before* reg2mem so the demotion slots also land in the new
    // entry.
    let old_entry = f.entry();
    let new_entry = f.add_block();
    let moved: Vec<InstId> = f
        .block(old_entry)
        .insts
        .clone()
        .into_iter()
        .filter(|&i| f.inst(i).op == Op::Alloca && f.inst(i).args[0].is_const())
        .collect();
    for &i in &moved {
        f.remove_from_block(old_entry, i);
        let at = f.block(new_entry).insts.len();
        f.insert_inst(new_entry, at, i);
    }
    {
        let mut br = Inst::new(Op::Br, Type::Void, vec![]);
        br.blocks = vec![old_entry];
        f.push_inst(new_entry, br);
    }
    let mut order = vec![new_entry];
    order.extend(f.block_order().iter().copied().filter(|&b| b != new_entry));
    f.set_block_order(order);

    // Step 2: demote cross-block SSA values; the slots land in new_entry.
    crate::reg2mem::run(f);
    // compact() in reg2mem renumbered everything; re-resolve blocks.
    let new_entry = f.entry();
    let old_blocks: Vec<BlockId> = f
        .block_order()
        .iter()
        .copied()
        .filter(|&b| b != new_entry)
        .collect();

    // Dispatcher and unreachable default.
    let dispatch = f.add_block();
    let dead = f.add_block();
    f.push_inst(dead, Inst::new(Op::Unreachable, Type::Void, vec![]));

    // The state slot.
    let state = f.new_inst(Inst::new(
        Op::Alloca,
        Type::ptr(Type::I64),
        vec![Value::const_int(Type::I64, 1)],
    ));
    f.insert_inst(new_entry, 0, state);
    // Drop new_entry's temporary `br old_entry`; it is replaced below.
    if let Some(t) = f.terminator(new_entry) {
        f.remove_from_block(new_entry, t);
    }
    let first_state = old_blocks[0];

    // Assign a state id to every original block.
    let sid = |b: BlockId| -> i64 { b.0 as i64 * 7 + 3 }; // arbitrary, distinct

    // Rewrite every original terminator into "store next-state; br dispatch".
    for &b in &old_blocks {
        let Some(t) = f.terminator(b) else { continue };
        let term = f.inst(t).clone();
        match term.op {
            Op::Ret | Op::Unreachable => continue,
            Op::Br => {
                let next = Value::const_int(Type::I64, sid(term.blocks[0]));
                f.remove_from_block(b, t);
                let st = f.new_inst(Inst::new(
                    Op::Store,
                    Type::Void,
                    vec![next, Value::Inst(state)],
                ));
                let mut br = Inst::new(Op::Br, Type::Void, vec![]);
                br.blocks = vec![dispatch];
                let br = f.new_inst(br);
                let len = f.block(b).insts.len();
                f.insert_inst(b, len, st);
                f.insert_inst(b, len + 1, br);
            }
            Op::CondBr => {
                let cond = term.args[0].clone();
                let then_s = Value::const_int(Type::I64, sid(term.blocks[0]));
                let else_s = Value::const_int(Type::I64, sid(term.blocks[1]));
                f.remove_from_block(b, t);
                let sel = f.new_inst(Inst::new(
                    Op::Select,
                    Type::I64,
                    vec![cond, then_s, else_s],
                ));
                let st = f.new_inst(Inst::new(
                    Op::Store,
                    Type::Void,
                    vec![Value::Inst(sel), Value::Inst(state)],
                ));
                let mut br = Inst::new(Op::Br, Type::Void, vec![]);
                br.blocks = vec![dispatch];
                let br = f.new_inst(br);
                let len = f.block(b).insts.len();
                f.insert_inst(b, len, sel);
                f.insert_inst(b, len + 1, st);
                f.insert_inst(b, len + 2, br);
            }
            Op::Switch => {
                // state = default; state = select(scrut == c_i, sid_i, state)…
                let scrut = term.args[0].clone();
                f.remove_from_block(b, t);
                let mut cur = Value::const_int(Type::I64, sid(term.blocks[0]));
                let mut to_insert: Vec<InstId> = Vec::new();
                for (cv, &target) in term.args[1..].iter().zip(&term.blocks[1..]) {
                    let mut cmp = Inst::new(
                        Op::ICmp,
                        Type::I1,
                        vec![scrut.clone(), cv.clone()],
                    );
                    cmp.pred = Some(yali_ir::Cmp::Eq);
                    let cmp = f.new_inst(cmp);
                    let sel = f.new_inst(Inst::new(
                        Op::Select,
                        Type::I64,
                        vec![
                            Value::Inst(cmp),
                            Value::const_int(Type::I64, sid(target)),
                            cur.clone(),
                        ],
                    ));
                    cur = Value::Inst(sel);
                    to_insert.push(cmp);
                    to_insert.push(sel);
                }
                let st = f.new_inst(Inst::new(
                    Op::Store,
                    Type::Void,
                    vec![cur, Value::Inst(state)],
                ));
                let mut br = Inst::new(Op::Br, Type::Void, vec![]);
                br.blocks = vec![dispatch];
                let br = f.new_inst(br);
                to_insert.push(st);
                to_insert.push(br);
                for id in to_insert {
                    let len = f.block(b).insts.len();
                    f.insert_inst(b, len, id);
                }
            }
            _ => continue,
        }
    }

    // New entry: store the old entry's state and enter the dispatcher.
    {
        let st = f.new_inst(Inst::new(
            Op::Store,
            Type::Void,
            vec![
                Value::const_int(Type::I64, sid(first_state)),
                Value::Inst(state),
            ],
        ));
        let mut br = Inst::new(Op::Br, Type::Void, vec![]);
        br.blocks = vec![dispatch];
        let br = f.new_inst(br);
        let len = f.block(new_entry).insts.len();
        f.insert_inst(new_entry, len, st);
        f.insert_inst(new_entry, len + 1, br);
    }

    // The dispatcher: load state, switch to the matching block.
    {
        let load = f.new_inst(Inst::new(Op::Load, Type::I64, vec![Value::Inst(state)]));
        let mut sw = Inst {
            op: Op::Switch,
            ty: Type::Void,
            args: vec![Value::Inst(load)],
            blocks: vec![dead],
            pred: None,
            callee: None,
        };
        for &b in &old_blocks {
            sw.args.push(Value::const_int(Type::I64, sid(b)));
            sw.blocks.push(b);
        }
        let sw = f.new_inst(sw);
        f.insert_inst(dispatch, 0, load);
        f.insert_inst(dispatch, 1, sw);
    }

    // Layout: new entry first.
    let mut order = vec![new_entry, dispatch];
    order.extend(old_blocks.iter().copied());
    order.push(dead);
    f.set_block_order(order);
    f.compact();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run as exec, ExecConfig, Val};
    use yali_ir::verify_module;

    const SRC: &str = r#"
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) { s += i * 2; } else { s -= 1; }
            }
            return s;
        }
    "#;

    fn flattened(src: &str) -> (Module, Module) {
        let m0 = yali_minic::compile(src).expect("compile");
        let mut m1 = m0.clone();
        assert!(run_module(&mut m1) > 0, "nothing flattened");
        verify_module(&m1).unwrap_or_else(|e| panic!("{e}\n{}", yali_ir::print_module(&m1)));
        (m0, m1)
    }

    #[test]
    fn dispatcher_shape_is_produced() {
        let (_, m1) = flattened(SRC);
        let f = m1.function("f").unwrap();
        // Exactly one switch: the dispatcher.
        let switches = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::Switch)
            .count();
        assert_eq!(switches, 1);
        // All conditional control flow became selects.
        let condbrs = f
            .iter_insts()
            .filter(|&(_, i)| f.inst(i).op == Op::CondBr)
            .count();
        assert_eq!(condbrs, 0);
        assert!(f
            .iter_insts()
            .any(|(_, i)| f.inst(i).op == Op::Select));
    }

    #[test]
    fn semantics_preserved() {
        let (m0, m1) = flattened(SRC);
        for n in [0i64, 1, 2, 10, 31] {
            let a = exec(&m0, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &[Val::Int(n)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "f({n})");
        }
    }

    #[test]
    fn switch_statements_flatten_too() {
        let src = r#"
            int f(int x) {
                int r = 0;
                switch (x) {
                    case 1: r = 10; break;
                    case 2: r = 20; break;
                    default: r = -1;
                }
                return r + 1;
            }
        "#;
        let (m0, m1) = flattened(src);
        for x in [1i64, 2, 3] {
            let a = exec(&m0, "f", &[Val::Int(x)], &[], &ExecConfig::default()).unwrap();
            let b = exec(&m1, "f", &[Val::Int(x)], &[], &ExecConfig::default()).unwrap();
            assert_eq!(a.ret, b.ret, "f({x})");
        }
    }

    #[test]
    fn tiny_functions_are_skipped() {
        let mut m = yali_minic::compile("int f(int x) { return x + 1; }").unwrap();
        assert_eq!(run_module(&mut m), 0);
    }

    #[test]
    fn flattening_is_idempotent_in_shape() {
        let (_, mut m1) = flattened(SRC);
        // Flattening again still verifies and still runs.
        run_module(&mut m1);
        verify_module(&m1).unwrap();
        let out = exec(&m1, "f", &[Val::Int(9)], &[], &ExecConfig::default()).unwrap();
        let m0 = yali_minic::compile(SRC).unwrap();
        let r = exec(&m0, "f", &[Val::Int(9)], &[], &ExecConfig::default()).unwrap();
        assert_eq!(out.ret, r.ret);
    }

    #[test]
    fn histogram_barely_changes_but_o3_changes_it_a_lot() {
        // Two of the paper's observations about fla in one test.
        let (m0, m1) = flattened(SRC);
        let h0 = yali_embed::histogram(&m0);
        let h1 = yali_embed::histogram(&m1);
        let d_fla = yali_embed::euclidean(&h0, &h1);
        let mut m1_opt = m1.clone();
        yali_opt::optimize(&mut m1_opt, yali_opt::OptLevel::O3);
        let d_fla_o3 = yali_embed::euclidean(&h0, &yali_embed::histogram(&m1_opt));
        // Optimizing flattened code moves the histogram further than
        // flattening alone moved it relative to per-opcode proportions; at
        // minimum both distances are nonzero and the shapes differ.
        assert!(d_fla > 0.0);
        assert!(d_fla_o3 > 0.0);
    }
}
