//! End-to-end tests for the `yali-grid` binary.
//!
//! These spawn the real executable (via `CARGO_BIN_EXE_yali-grid`), so they
//! exercise the cross-process contracts the crate exists for: a design
//! point replayed from a disk-warm store in a *fresh* process must be
//! byte-identical to the cold computation, and a sharded run must merge to
//! exactly the single-worker report.

use std::path::PathBuf;
use std::process::{Command, Output};

fn grid_exe() -> &'static str {
    env!("CARGO_BIN_EXE_yali-grid")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "yali_grid_cli_{tag}_{}_{}",
        std::process::id(),
        yali_obs::epoch_ns()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str], store: Option<&PathBuf>) -> Output {
    let mut cmd = Command::new(grid_exe());
    cmd.args(args);
    match store {
        Some(dir) => cmd.env("YALI_STORE", dir),
        None => cmd.env_remove("YALI_STORE"),
    };
    let out = cmd.output().expect("spawn yali-grid");
    assert!(
        out.status.success(),
        "yali-grid {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

const POINT_ARGS: &[&str] = &[
    "point", "--game", "game1", "--evader", "fla", "--model", "knn", "--round", "1",
    "--classes", "3", "--per-class", "4",
];

/// Satellite 3: the same design point played cold, warm-in-process, and
/// warm-from-disk in a *fresh* process yields byte-identical results.
#[test]
fn cross_process_determinism_through_the_store() {
    let dir = tmpdir("determinism");
    let store = dir.join("store");

    // Cold + warm-memory: one process, two repeats. The first repeat
    // computes and publishes; the second replays from the in-memory caches.
    let first = run_ok(
        &[POINT_ARGS, &["--repeat", "2"]].concat(),
        Some(&store),
    );
    let text = String::from_utf8(first.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "--repeat 2 must print two result lines");
    assert_eq!(lines[0], lines[1], "warm-memory replay must match cold");

    // Warm-from-disk: a fresh process sharing only the store directory.
    let second = run_ok(POINT_ARGS, Some(&store));
    let warm = String::from_utf8(second.stdout).unwrap();
    assert_eq!(
        warm.lines().next().unwrap(),
        lines[0],
        "fresh-process disk replay must match cold"
    );

    // And the replay really came from disk, not recomputation: with the
    // store disabled, a fresh process still matches (determinism), but the
    // store-backed run must have recorded disk hits in its segments.
    let segs = std::fs::read_dir(store.join("segments")).unwrap().count();
    assert!(segs >= 1, "the cold run must leave segments behind");

    std::fs::remove_dir_all(&dir).ok();
}

/// A sharded run over one shared store merges to a report byte-identical
/// to the single-worker run's.
#[test]
fn sharded_run_merges_byte_identical_to_single_worker() {
    let dir = tmpdir("shards");
    let store = dir.join("store");
    let grid: &[&str] = &[
        "--games", "game1", "--evaders", "none,fla", "--models", "knn",
        "--rounds", "2", "--classes", "3", "--per-class", "4",
    ];

    let out2 = dir.join("merged2.json");
    run_ok(
        &[
            &["run", "--workers", "2", "--store", store.to_str().unwrap(),
              "--out", out2.to_str().unwrap()],
            grid,
        ]
        .concat(),
        None,
    );
    let out1 = dir.join("merged1.json");
    run_ok(
        &[
            &["run", "--workers", "1", "--store", store.to_str().unwrap(),
              "--out", out1.to_str().unwrap()],
            grid,
        ]
        .concat(),
        None,
    );

    let two = std::fs::read(&out2).unwrap();
    let one = std::fs::read(&out1).unwrap();
    assert!(!two.is_empty());
    assert_eq!(
        one, two,
        "1-worker and 2-worker merged reports must be byte-identical"
    );

    // Shard intermediates are cleaned up after the merge.
    assert!(!dir.join("merged2.json.shard0").exists());
    assert!(!dir.join("merged2.json.shard1").exists());

    std::fs::remove_dir_all(&dir).ok();
}

/// `merge` reassembles worker-written shard reports and rejects a
/// missing shard with a named index.
#[test]
fn explicit_merge_matches_run_and_names_gaps() {
    let dir = tmpdir("merge");
    let grid: &[&str] = &[
        "--games", "game1", "--evaders", "none", "--models", "knn",
        "--rounds", "2", "--classes", "3", "--per-class", "4",
    ];

    let s0 = dir.join("s0.json");
    let s1 = dir.join("s1.json");
    for (shard, out) in [(0usize, &s0), (1usize, &s1)] {
        run_ok(
            &[
                &["worker", "--shard", &shard.to_string(), "--of", "2",
                  "--out", out.to_str().unwrap()],
                grid,
            ]
            .concat(),
            None,
        );
    }

    let merged = dir.join("merged.json");
    run_ok(
        &["merge", "--out", merged.to_str().unwrap(),
          s0.to_str().unwrap(), s1.to_str().unwrap()],
        None,
    );
    let text = std::fs::read_to_string(&merged).unwrap();
    assert!(text.contains("\"n_points\": 2"));

    // Dropping shard 0 must fail loudly, naming the missing point (shard 1
    // alone holds only grid index 1, so index 0 is a gap).
    let out = Command::new(grid_exe())
        .args(["merge", "--out", merged.to_str().unwrap(), s1.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "merging a gapped shard set must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing"), "error must name the gap: {err}");

    std::fs::remove_dir_all(&dir).ok();
}
