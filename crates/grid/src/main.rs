//! The `yali-grid` CLI: plan, play, shard, and merge experiment sweeps.
//!
//! ```text
//! yali-grid plan   [grid options]                 list the design points
//! yali-grid point  --game G --evader E --model M --round R [--repeat N]
//!                  [--classes C --per-class P]    play one point, print JSON
//! yali-grid worker --shard I --of N --out FILE [--runstats FILE] [grid options]
//!                  play one shard, write its report
//! yali-grid run    --workers N --out FILE [--store DIR] [--runstats FILE] [grid options]
//!                  spawn N workers sharing one store, merge their reports
//! yali-grid merge  --out FILE IN...               merge shard reports
//!
//! grid options: --games A,B --evaders A,B --models A,B
//!               --rounds N --classes N --per-class N
//! ```
//!
//! Set `YALI_STORE=dir` (or pass `--store`) so workers share artifacts;
//! re-running a grid against a warm store recomputes only what the
//! previous run never committed — that is the resume story.
//!
//! Under `YALI_OBS=1` a sharded `run` is also a *fleet observability*
//! run: every worker is stamped with its shard identity, gets its own
//! trace sink (`YALI_TRACE=<base>.shardN` when the driver has a
//! `YALI_TRACE`), plays its slice inside a traced `grid.worker` span, and
//! writes a per-shard run report. The driver merges those reports
//! bucket-wise into `RUNSTATS_grid.json` (see
//! [`yali_core::FleetReport`]), prints a per-shard straggler table, and
//! leaves the gating to `yali-prof diff --max-straggler-ratio/
//! --max-shard-drift`.

use std::process::{Command, ExitCode};

use yali_grid::{
    evader_by_name, game_by_name, merge, model_by_name, partition, play_point, GridReport,
    GridSpec, PointResult,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("plan") => cmd_plan(&args[1..]),
        Some("point") => cmd_point(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("help") | Some("--help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("yali-grid: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: yali-grid <plan|point|worker|run|merge> [options]
  plan   [grid options]                          list the design points
  point  --game G --evader E --model M --round R [--repeat N] [--classes C --per-class P]
  worker --shard I --of N --out FILE [--runstats FILE] [grid options]
  run    --workers N --out FILE [--store DIR] [--runstats FILE] [grid options]
  merge  --out FILE IN...
grid options: --games A,B --evaders A,B --models A,B --rounds N --classes N --per-class N
under YALI_OBS=1, run writes a fleet report (default RUNSTATS_grid.json; --runstats FILE)
merging every shard's run report, and YALI_TRACE=<base> gives each worker <base>.shardN
";

/// One `--flag value` argument walker; positional args collect separately.
struct Args<'a> {
    flags: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn parse(args: &'a [String]) -> Result<Args<'a>, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name, value.as_str()));
            } else {
                positional.push(a.as_str());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} {v:?} is not a count")),
        }
    }
}

/// Builds the grid spec from `--games/--evaders/--models/--rounds/
/// --classes/--per-class`, defaulting to the `YALI_SCALE` scale's Game-1
/// sweep.
fn spec_from_args(args: &Args<'_>) -> Result<GridSpec, String> {
    let mut spec = GridSpec::from_scale(&yali_core::Scale::from_env());
    if let Some(games) = args.get("games") {
        spec.games = games
            .split(',')
            .map(game_by_name)
            .collect::<Result<_, _>>()?;
    }
    if let Some(evaders) = args.get("evaders") {
        spec.evaders = evaders
            .split(',')
            .map(evader_by_name)
            .collect::<Result<_, _>>()?;
    }
    if let Some(models) = args.get("models") {
        spec.models = models
            .split(',')
            .map(model_by_name)
            .collect::<Result<_, _>>()?;
    }
    spec.rounds = args.get_usize("rounds", spec.rounds)?;
    spec.classes = args.get_usize("classes", spec.classes)?;
    spec.per_class = args.get_usize("per-class", spec.per_class)?;
    if spec.games.is_empty() || spec.evaders.is_empty() || spec.models.is_empty() {
        return Err("the grid needs at least one game, evader, and model".into());
    }
    if spec.rounds == 0 || spec.classes < 2 || spec.per_class < 2 {
        return Err("the grid needs rounds >= 1, classes >= 2, per-class >= 2".into());
    }
    Ok(spec)
}

/// The grid flags to forward verbatim to spawned workers.
fn forwarded_grid_flags(args: &Args<'_>) -> Vec<String> {
    let mut out = Vec::new();
    for name in ["games", "evaders", "models", "rounds", "classes", "per-class"] {
        if let Some(v) = args.get(name) {
            out.push(format!("--{name}"));
            out.push(v.to_string());
        }
    }
    out
}

fn cmd_plan(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let spec = spec_from_args(&args)?;
    let points = spec.points();
    for p in &points {
        println!(
            "{:6}  {}  {}  {}  round {}",
            p.index,
            p.game.name(),
            p.evader.name(),
            p.model.name(),
            p.round
        );
    }
    println!(
        "{} points ({} games x {} evaders x {} models x {} rounds), corpus {} classes x {}",
        points.len(),
        spec.games.len(),
        spec.evaders.len(),
        spec.models.len(),
        spec.rounds,
        spec.classes,
        spec.per_class
    );
    Ok(())
}

fn cmd_point(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let spec = GridSpec {
        games: vec![game_by_name(args.require("game")?)?],
        evaders: vec![evader_by_name(args.require("evader")?)?],
        models: vec![model_by_name(args.require("model")?)?],
        rounds: 1,
        classes: args.get_usize("classes", yali_core::Scale::from_env().classes)?,
        per_class: args.get_usize("per-class", yali_core::Scale::from_env().per_class)?,
    };
    let round: u64 = args
        .require("round")?
        .parse()
        .map_err(|_| "--round must be a number".to_string())?;
    let repeat = args.get_usize("repeat", 1)?;
    let mut point = spec.points()[0];
    point.round = round;
    for _ in 0..repeat {
        let r = play_point(&spec, &point);
        println!(
            "{}",
            serde_json::to_string(&r).map_err(|e| format!("serialize: {e:?}"))?
        );
    }
    yali_core::store::sync_active();
    Ok(())
}

/// Seed mixed with the shard index to derive a worker's trace context
/// ([`yali_obs::TraceContext::derive`]), so every shard's `grid.worker`
/// span carries a distinct, deterministic trace id.
const GRID_TRACE_SEED: u64 = 0x9a11_6d1d;

fn cmd_worker(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let spec = spec_from_args(&args)?;
    let shard = args.get_usize("shard", 0)?;
    let of = args.get_usize("of", 1)?;
    if of == 0 || shard >= of {
        return Err(format!("--shard {shard} not in 0..{of}"));
    }
    // Stamp the process lane before the trace sink can attach (the first
    // instrumented call opens it lazily from YALI_TRACE).
    yali_obs::set_identity("worker", Some(shard as u64));
    let out = args.require("out")?;
    let mine = partition(&spec.points(), shard, of);
    let mut results = Vec::with_capacity(mine.len());
    {
        let ctx = yali_obs::TraceContext::derive(GRID_TRACE_SEED, shard as u64);
        let _ctx_guard = yali_obs::push_context(ctx);
        let _worker_span = yali_obs::span!("grid.worker");
        for p in &mine {
            let _point_span = yali_obs::span_attr!("grid.point", "point", p.index as u64);
            results.push(PointResult::new(p, &play_point(&spec, p)));
        }
    }
    let report = GridReport::new(results);
    write_atomically(out, &report.to_json())?;
    // Make this worker's published artifacts durable before exiting so a
    // resuming run finds them even after power loss.
    yali_core::store::sync_active();
    // The run report lands after the worker span closed, so the shard's
    // full wall time is in `phases["grid.worker"]` (no-op with obs off).
    if let Some(runstats) = args.get("runstats") {
        yali_core::report::maybe_write_runstats(runstats);
    }
    eprintln!(
        "worker {shard}/{of}: {} points -> {out}{}",
        mine.len(),
        store_summary()
    );
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    // The driver's own (usually tiny) capture is stamped "driver" so a
    // merged timeline never confuses it with a worker lane.
    yali_obs::set_identity("driver", None);
    spec_from_args(&args)?; // validate before spawning anything
    let workers = args.get_usize("workers", 1)?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    let out = args.require("out")?;
    let store = args.get("store");
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let grid_flags = forwarded_grid_flags(&args);
    // Fleet observability rides along when the driver runs instrumented:
    // each worker then writes its own run report for the merge below.
    let fleet_out = args.get("runstats").unwrap_or("RUNSTATS_grid.json");
    let obs = yali_obs::enabled();
    let trace_base = std::env::var("YALI_TRACE").ok().filter(|t| !t.trim().is_empty());

    let mut children = Vec::new();
    for shard in 0..workers {
        let shard_out = format!("{out}.shard{shard}");
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--of")
            .arg(workers.to_string())
            .arg("--out")
            .arg(&shard_out)
            .args(&grid_flags);
        if let Some(dir) = store {
            cmd.env("YALI_STORE", dir);
        }
        // Belt and braces: cmd_worker stamps its own identity, but the
        // env keeps any grandchild process on the right lane too.
        cmd.env("YALI_ROLE", "worker").env("YALI_SHARD", shard.to_string());
        if let Some(base) = &trace_base {
            cmd.env("YALI_TRACE", format!("{}.shard{shard}", base.trim()));
        }
        if obs {
            cmd.arg("--runstats").arg(format!("{shard_out}.runstats"));
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn worker {shard}: {e}"))?;
        children.push((shard, shard_out, child));
    }

    let mut shard_files = Vec::new();
    let mut failures = Vec::new();
    for (shard, shard_out, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("cannot wait for worker {shard}: {e}"))?;
        if status.success() {
            shard_files.push((shard, shard_out));
        } else {
            failures.push(format!("worker {shard} exited with {status}"));
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let reports = shard_files
        .iter()
        .map(|(_, f)| {
            std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read {f}: {e}"))
                .and_then(|text| GridReport::from_json(&text))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if obs {
        merge_fleet_runstats(&shard_files, &reports, fleet_out)?;
    }
    let merged = merge(reports)?;
    write_atomically(out, &merged.to_json())?;
    for (_, f) in &shard_files {
        let _ = std::fs::remove_file(f);
    }
    let mean_acc = merged.results.iter().map(|r| r.accuracy).sum::<f64>()
        / merged.results.len().max(1) as f64;
    println!(
        "{} workers, {} points -> {out} (mean accuracy {:.3})",
        workers, merged.n_points, mean_acc
    );
    Ok(())
}

/// Reads every shard's run report, merges them into a
/// [`yali_core::FleetReport`] written to `fleet_out`, and prints the
/// per-shard straggler table (wall time relative to the median shard).
fn merge_fleet_runstats(
    shard_files: &[(usize, String)],
    grid_reports: &[GridReport],
    fleet_out: &str,
) -> Result<(), String> {
    let mut shards = Vec::with_capacity(shard_files.len());
    for ((shard, grid_file), grid_report) in shard_files.iter().zip(grid_reports) {
        let path = format!("{grid_file}.runstats");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read shard run report {path}: {e}"))?;
        let report = yali_core::RunReport::from_json(&text)?;
        let wall_ns = report
            .phases
            .get("grid.worker")
            .map(|p| p.total_ns)
            .unwrap_or(0);
        shards.push(yali_core::ShardReport {
            shard: *shard,
            wall_ns,
            points: grid_report.n_points as usize,
            report,
        });
        let _ = std::fs::remove_file(&path);
    }
    let fleet = yali_core::FleetReport::new(shards);
    write_atomically(fleet_out, &fleet.to_json())?;
    let walls: Vec<u64> = fleet.shards.iter().map(|s| s.wall_ns).collect();
    let median = yali_core::report::median_wall_ns(&walls).max(1.0);
    for s in &fleet.shards {
        println!(
            "shard {}: {:>9.1} ms wall, {:>4} points ({:.2}x median)",
            s.shard,
            s.wall_ns as f64 / 1e6,
            s.points,
            s.wall_ns as f64 / median
        );
    }
    println!(
        "fleet: {} shards, straggler ratio {:.2} -> {fleet_out}",
        fleet.n_shards, fleet.straggler_ratio
    );
    Ok(())
}

fn cmd_merge(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let out = args.require("out")?;
    if args.positional.is_empty() {
        return Err("merge needs at least one input report".into());
    }
    let reports = args
        .positional
        .iter()
        .map(|f| {
            std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read {f}: {e}"))
                .and_then(|text| GridReport::from_json(&text))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let merged = merge(reports)?;
    write_atomically(out, &merged.to_json())?;
    println!("{} reports, {} points -> {out}", args.positional.len(), merged.n_points);
    Ok(())
}

/// Writes via temp file + rename, so a killed driver never leaves a
/// half-written report where a resume would trust it.
fn write_atomically(path: &str, contents: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} into place: {e}"))
}

/// A one-line store summary for worker stderr (empty with no store).
fn store_summary() -> String {
    match yali_core::store::active_stats() {
        Some(s) => format!(
            " (store: {} entries, {} disk hits, {} published)",
            s.entries, s.disk_hits, s.published
        ),
        None => String::new(),
    }
}
