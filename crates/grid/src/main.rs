//! The `yali-grid` CLI: plan, play, shard, and merge experiment sweeps.
//!
//! ```text
//! yali-grid plan   [grid options]                 list the design points
//! yali-grid point  --game G --evader E --model M --round R [--repeat N]
//!                  [--classes C --per-class P]    play one point, print JSON
//! yali-grid worker --shard I --of N --out FILE [grid options]
//!                  play one shard, write its report
//! yali-grid run    --workers N --out FILE [--store DIR] [grid options]
//!                  spawn N workers sharing one store, merge their reports
//! yali-grid merge  --out FILE IN...               merge shard reports
//!
//! grid options: --games A,B --evaders A,B --models A,B
//!               --rounds N --classes N --per-class N
//! ```
//!
//! Set `YALI_STORE=dir` (or pass `--store`) so workers share artifacts;
//! re-running a grid against a warm store recomputes only what the
//! previous run never committed — that is the resume story.

use std::process::{Command, ExitCode};

use yali_grid::{
    evader_by_name, game_by_name, merge, model_by_name, partition, play_point, GridReport,
    GridSpec, PointResult,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("plan") => cmd_plan(&args[1..]),
        Some("point") => cmd_point(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("help") | Some("--help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("yali-grid: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: yali-grid <plan|point|worker|run|merge> [options]
  plan   [grid options]                          list the design points
  point  --game G --evader E --model M --round R [--repeat N] [--classes C --per-class P]
  worker --shard I --of N --out FILE [grid options]
  run    --workers N --out FILE [--store DIR] [grid options]
  merge  --out FILE IN...
grid options: --games A,B --evaders A,B --models A,B --rounds N --classes N --per-class N
";

/// One `--flag value` argument walker; positional args collect separately.
struct Args<'a> {
    flags: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn parse(args: &'a [String]) -> Result<Args<'a>, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name, value.as_str()));
            } else {
                positional.push(a.as_str());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} {v:?} is not a count")),
        }
    }
}

/// Builds the grid spec from `--games/--evaders/--models/--rounds/
/// --classes/--per-class`, defaulting to the `YALI_SCALE` scale's Game-1
/// sweep.
fn spec_from_args(args: &Args<'_>) -> Result<GridSpec, String> {
    let mut spec = GridSpec::from_scale(&yali_core::Scale::from_env());
    if let Some(games) = args.get("games") {
        spec.games = games
            .split(',')
            .map(game_by_name)
            .collect::<Result<_, _>>()?;
    }
    if let Some(evaders) = args.get("evaders") {
        spec.evaders = evaders
            .split(',')
            .map(evader_by_name)
            .collect::<Result<_, _>>()?;
    }
    if let Some(models) = args.get("models") {
        spec.models = models
            .split(',')
            .map(model_by_name)
            .collect::<Result<_, _>>()?;
    }
    spec.rounds = args.get_usize("rounds", spec.rounds)?;
    spec.classes = args.get_usize("classes", spec.classes)?;
    spec.per_class = args.get_usize("per-class", spec.per_class)?;
    if spec.games.is_empty() || spec.evaders.is_empty() || spec.models.is_empty() {
        return Err("the grid needs at least one game, evader, and model".into());
    }
    if spec.rounds == 0 || spec.classes < 2 || spec.per_class < 2 {
        return Err("the grid needs rounds >= 1, classes >= 2, per-class >= 2".into());
    }
    Ok(spec)
}

/// The grid flags to forward verbatim to spawned workers.
fn forwarded_grid_flags(args: &Args<'_>) -> Vec<String> {
    let mut out = Vec::new();
    for name in ["games", "evaders", "models", "rounds", "classes", "per-class"] {
        if let Some(v) = args.get(name) {
            out.push(format!("--{name}"));
            out.push(v.to_string());
        }
    }
    out
}

fn cmd_plan(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let spec = spec_from_args(&args)?;
    let points = spec.points();
    for p in &points {
        println!(
            "{:6}  {}  {}  {}  round {}",
            p.index,
            p.game.name(),
            p.evader.name(),
            p.model.name(),
            p.round
        );
    }
    println!(
        "{} points ({} games x {} evaders x {} models x {} rounds), corpus {} classes x {}",
        points.len(),
        spec.games.len(),
        spec.evaders.len(),
        spec.models.len(),
        spec.rounds,
        spec.classes,
        spec.per_class
    );
    Ok(())
}

fn cmd_point(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let spec = GridSpec {
        games: vec![game_by_name(args.require("game")?)?],
        evaders: vec![evader_by_name(args.require("evader")?)?],
        models: vec![model_by_name(args.require("model")?)?],
        rounds: 1,
        classes: args.get_usize("classes", yali_core::Scale::from_env().classes)?,
        per_class: args.get_usize("per-class", yali_core::Scale::from_env().per_class)?,
    };
    let round: u64 = args
        .require("round")?
        .parse()
        .map_err(|_| "--round must be a number".to_string())?;
    let repeat = args.get_usize("repeat", 1)?;
    let mut point = spec.points()[0];
    point.round = round;
    for _ in 0..repeat {
        let r = play_point(&spec, &point);
        println!(
            "{}",
            serde_json::to_string(&r).map_err(|e| format!("serialize: {e:?}"))?
        );
    }
    yali_core::store::sync_active();
    Ok(())
}

fn cmd_worker(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let spec = spec_from_args(&args)?;
    let shard = args.get_usize("shard", 0)?;
    let of = args.get_usize("of", 1)?;
    if of == 0 || shard >= of {
        return Err(format!("--shard {shard} not in 0..{of}"));
    }
    let out = args.require("out")?;
    let mine = partition(&spec.points(), shard, of);
    let mut results = Vec::with_capacity(mine.len());
    for p in &mine {
        results.push(PointResult::new(p, &play_point(&spec, p)));
    }
    let report = GridReport::new(results);
    write_atomically(out, &report.to_json())?;
    // Make this worker's published artifacts durable before exiting so a
    // resuming run finds them even after power loss.
    yali_core::store::sync_active();
    eprintln!(
        "worker {shard}/{of}: {} points -> {out}{}",
        mine.len(),
        store_summary()
    );
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    spec_from_args(&args)?; // validate before spawning anything
    let workers = args.get_usize("workers", 1)?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    let out = args.require("out")?;
    let store = args.get("store");
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let grid_flags = forwarded_grid_flags(&args);

    let mut children = Vec::new();
    for shard in 0..workers {
        let shard_out = format!("{out}.shard{shard}");
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--of")
            .arg(workers.to_string())
            .arg("--out")
            .arg(&shard_out)
            .args(&grid_flags);
        if let Some(dir) = store {
            cmd.env("YALI_STORE", dir);
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn worker {shard}: {e}"))?;
        children.push((shard, shard_out, child));
    }

    let mut shard_files = Vec::new();
    let mut failures = Vec::new();
    for (shard, shard_out, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("cannot wait for worker {shard}: {e}"))?;
        if status.success() {
            shard_files.push(shard_out);
        } else {
            failures.push(format!("worker {shard} exited with {status}"));
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let reports = shard_files
        .iter()
        .map(|f| {
            std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read {f}: {e}"))
                .and_then(|text| GridReport::from_json(&text))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let merged = merge(reports)?;
    write_atomically(out, &merged.to_json())?;
    for f in &shard_files {
        let _ = std::fs::remove_file(f);
    }
    let mean_acc = merged.results.iter().map(|r| r.accuracy).sum::<f64>()
        / merged.results.len().max(1) as f64;
    println!(
        "{} workers, {} points -> {out} (mean accuracy {:.3})",
        workers, merged.n_points, mean_acc
    );
    Ok(())
}

fn cmd_merge(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let out = args.require("out")?;
    if args.positional.is_empty() {
        return Err("merge needs at least one input report".into());
    }
    let reports = args
        .positional
        .iter()
        .map(|f| {
            std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read {f}: {e}"))
                .and_then(|text| GridReport::from_json(&text))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let merged = merge(reports)?;
    write_atomically(out, &merged.to_json())?;
    println!("{} reports, {} points -> {out}", args.positional.len(), merged.n_points);
    Ok(())
}

/// Writes via temp file + rename, so a killed driver never leaves a
/// half-written report where a resume would trust it.
fn write_atomically(path: &str, contents: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} into place: {e}"))
}

/// A one-line store summary for worker stderr (empty with no store).
fn store_summary() -> String {
    match yali_core::store::active_stats() {
        Some(s) => format!(
            " (store: {} entries, {} disk hits, {} published)",
            s.entries, s.disk_hits, s.published
        ),
        None => String::new(),
    }
}
