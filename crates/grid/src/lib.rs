//! # yali-grid
//!
//! The sharded sweep driver. A full experiment sweep — games × evaders ×
//! models × rounds — is a grid of independent design points, each a pure
//! function of its coordinates. This crate enumerates that grid
//! deterministically, partitions it across worker processes that share
//! one persistent artifact store (`YALI_STORE`), and merges the workers'
//! results into a single report that is byte-identical however many
//! workers produced it.
//!
//! Combined with the store's read-through caches, this is what makes an
//! interrupted sweep cheap to resume: relaunching the same grid against
//! the same store recomputes only the artifacts the previous run never
//! committed — everything else is a disk hit.
//!
//! The binary (`yali-grid`) fronts this library with `plan`, `point`,
//! `worker`, `run`, and `merge` subcommands; see `yali-grid help`.

#![warn(missing_docs)]

use serde::Serialize;
use serde_json::Value;

use yali_core::{play, ClassifierSpec, Corpus, Game, GameConfig, GameResult, Transformer};
use yali_ml::ModelKind;

/// Schema version of the merged grid report.
pub const GRID_SCHEMA_VERSION: u32 = 1;

/// The sweep grid: which games, evaders, models, and rounds to cover, and
/// how big each round's corpus is.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Games to play.
    pub games: Vec<Game>,
    /// Evaders to field.
    pub evaders: Vec<Transformer>,
    /// Classifier models to train.
    pub models: Vec<ModelKind>,
    /// Rounds (seeds) per cell.
    pub rounds: usize,
    /// POJ classes per corpus.
    pub classes: usize,
    /// Programs per class.
    pub per_class: usize,
}

impl GridSpec {
    /// The default sweep at the given scale: Game 1 (the paper's headline
    /// asymmetric game), every evader, every model.
    pub fn from_scale(scale: &yali_core::Scale) -> GridSpec {
        GridSpec {
            games: vec![Game::Game1],
            evaders: Transformer::EVADERS.to_vec(),
            models: ModelKind::ALL.to_vec(),
            rounds: scale.rounds,
            classes: scale.classes,
            per_class: scale.per_class,
        }
    }

    /// Enumerates the grid in its canonical order (game-major, then
    /// evader, model, round); `index` is the position in this order, so
    /// any two processes given the same spec agree on every point's
    /// coordinates.
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for &game in &self.games {
            for &evader in &self.evaders {
                for &model in &self.models {
                    for round in 0..self.rounds {
                        out.push(DesignPoint {
                            index: out.len(),
                            game,
                            evader,
                            model,
                            round: round as u64,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One cell × round of the sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// Position in the grid's canonical enumeration order.
    pub index: usize,
    /// The game played.
    pub game: Game,
    /// The evader fielded.
    pub evader: Transformer,
    /// The classifier model trained.
    pub model: ModelKind,
    /// The round (drives the corpus and training seeds).
    pub round: u64,
}

/// The points of shard `shard` out of `of` — a deterministic round-robin
/// partition, so shards are balanced across the grid's axes and every
/// point lands in exactly one shard.
pub fn partition(points: &[DesignPoint], shard: usize, of: usize) -> Vec<DesignPoint> {
    assert!(of > 0 && shard < of, "shard {shard} not in 0..{of}");
    points
        .iter()
        .filter(|p| p.index % of == shard)
        .copied()
        .collect()
}

/// Plays one design point: the same corpus/seed discipline as the bench
/// sweeps (`yali_bench::sweep_cell`), so grid results line up with bench
/// results. A pure function of `(spec, point)` — any process that plays
/// the same point gets the byte-identical [`GameResult`].
pub fn play_point(spec: &GridSpec, p: &DesignPoint) -> GameResult {
    let corpus = Corpus::poj(spec.classes, spec.per_class, 60 + p.round);
    let cfg = GameConfig::game0(ClassifierSpec::histogram(p.model), p.round)
        .with_game(p.game, p.evader);
    play(&corpus, &cfg)
}

/// One played point in a grid report: the point's coordinates plus its
/// [`GameResult`] fields, flattened for JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PointResult {
    /// The point's grid index.
    pub index: u64,
    /// Game name (`game0`..`game3`).
    pub game: String,
    /// Evader name (`none`, `fla`, …).
    pub evader: String,
    /// Model name (`rf`, `knn`, …).
    pub model: String,
    /// The round.
    pub round: u64,
    /// Challenge accuracy.
    pub accuracy: f64,
    /// Macro F1.
    pub f1: f64,
    /// Training-set size.
    pub n_train: u64,
    /// Challenge-set size.
    pub n_test: u64,
    /// Model memory proxy, in bytes.
    pub model_bytes: u64,
}

impl PointResult {
    /// Flattens a played point into its report row.
    pub fn new(p: &DesignPoint, r: &GameResult) -> PointResult {
        PointResult {
            index: p.index as u64,
            game: p.game.name().to_string(),
            evader: p.evader.name().to_string(),
            model: p.model.name().to_string(),
            round: p.round,
            accuracy: r.accuracy,
            f1: r.f1,
            n_train: r.n_train as u64,
            n_test: r.n_test as u64,
            model_bytes: r.model_bytes as u64,
        }
    }

    fn from_value(v: &Value) -> Result<PointResult, String> {
        let u = |k: &str| {
            v.get(k)
                .as_u64()
                .ok_or_else(|| format!("point result missing integer field {k:?}"))
        };
        let f = |k: &str| {
            v.get(k)
                .as_f64()
                .ok_or_else(|| format!("point result missing number field {k:?}"))
        };
        let s = |k: &str| {
            v.get(k)
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("point result missing string field {k:?}"))
        };
        Ok(PointResult {
            index: u("index")?,
            game: s("game")?,
            evader: s("evader")?,
            model: s("model")?,
            round: u("round")?,
            accuracy: f("accuracy")?,
            f1: f("f1")?,
            n_train: u("n_train")?,
            n_test: u("n_test")?,
            model_bytes: u("model_bytes")?,
        })
    }
}

/// A grid report: a worker's shard of results, or the merged whole.
///
/// Only deterministic fields live here — no wall times, hostnames, or
/// store statistics — so the merge of N workers' reports is byte-identical
/// to a single process's run of the same grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GridReport {
    /// [`GRID_SCHEMA_VERSION`] of the writer.
    pub schema_version: u32,
    /// Number of results (the shard's, or the merged grid's).
    pub n_points: u64,
    /// The played points, sorted by grid index.
    pub results: Vec<PointResult>,
}

impl GridReport {
    /// Wraps played results into a report (sorts by index).
    pub fn new(mut results: Vec<PointResult>) -> GridReport {
        results.sort_by_key(|r| r.index);
        GridReport {
            schema_version: GRID_SCHEMA_VERSION,
            n_points: results.len() as u64,
            results,
        }
    }

    /// The report as pretty-printed JSON (trailing newline included, so
    /// the file is diff-friendly).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("GridReport serializes");
        s.push('\n');
        s
    }

    /// Parses a report written by [`GridReport::to_json`].
    pub fn from_json(text: &str) -> Result<GridReport, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("invalid report JSON: {e:?}"))?;
        let schema_version = v
            .get("schema_version")
            .as_u64()
            .ok_or("report missing schema_version")? as u32;
        if schema_version > GRID_SCHEMA_VERSION {
            return Err(format!(
                "report schema_version {schema_version} is newer than this binary \
                 (understands up to {GRID_SCHEMA_VERSION})"
            ));
        }
        let results = v
            .get("results")
            .as_array()
            .ok_or("report missing results array")?
            .iter()
            .map(PointResult::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let n_points = v.get("n_points").as_u64().ok_or("report missing n_points")?;
        if n_points != results.len() as u64 {
            return Err(format!(
                "report n_points {n_points} disagrees with {} results",
                results.len()
            ));
        }
        Ok(GridReport {
            schema_version,
            n_points,
            results,
        })
    }
}

/// Merges worker shard reports into the full grid report. The union must
/// cover indices `0..n` with no duplicates — a missing index means a
/// worker died before finishing its shard, and the merge names it.
pub fn merge(reports: Vec<GridReport>) -> Result<GridReport, String> {
    let mut results: Vec<PointResult> = reports.into_iter().flat_map(|r| r.results).collect();
    results.sort_by_key(|r| r.index);
    for (i, r) in results.iter().enumerate() {
        if r.index != i as u64 {
            return Err(if results.iter().filter(|x| x.index == r.index).count() > 1 {
                format!("duplicate result for grid index {}", r.index)
            } else {
                format!("missing result for grid index {i} (a worker died mid-shard?)")
            });
        }
    }
    Ok(GridReport::new(results))
}

/// Looks a game up by its [`Game::name`].
pub fn game_by_name(name: &str) -> Result<Game, String> {
    Game::ALL
        .into_iter()
        .find(|g| g.name() == name)
        .ok_or_else(|| format!("unknown game {name:?} (games: game0..game3)"))
}

/// Looks an evader up by its [`Transformer::name`] (any of
/// [`Transformer::EVADERS`], which includes `none`).
pub fn evader_by_name(name: &str) -> Result<Transformer, String> {
    Transformer::EVADERS
        .into_iter()
        .find(|e| e.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = Transformer::EVADERS.iter().map(|e| e.name()).collect();
            format!("unknown evader {name:?} (evaders: {})", known.join(", "))
        })
}

/// Looks a model up by its [`ModelKind::name`].
pub fn model_by_name(name: &str) -> Result<ModelKind, String> {
    ModelKind::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
            format!("unknown model {name:?} (models: {})", known.join(", "))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec {
            games: vec![Game::Game0, Game::Game1],
            evaders: vec![Transformer::None, evader_by_name("fla").unwrap()],
            models: vec![ModelKind::Knn, ModelKind::Rf],
            rounds: 3,
            classes: 3,
            per_class: 4,
        }
    }

    #[test]
    fn grid_enumeration_is_dense_and_ordered() {
        let points = spec().points();
        assert_eq!(points.len(), 2 * 2 * 2 * 3);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Canonical order: the last axis (round) varies fastest.
        assert_eq!(points[0].round, 0);
        assert_eq!(points[1].round, 1);
        assert_eq!(points[2].round, 2);
        assert_eq!(points[3].round, 0);
    }

    #[test]
    fn partition_covers_every_point_exactly_once() {
        let points = spec().points();
        for of in [1, 2, 3, 5] {
            let mut seen = vec![0usize; points.len()];
            for shard in 0..of {
                for p in partition(&points, shard, of) {
                    seen[p.index] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "of={of}: {seen:?}");
        }
    }

    #[test]
    fn merge_reassembles_shards_byte_identically() {
        let points = spec().points();
        // Fake results: deterministic fields derived from the index, no
        // game-playing needed to exercise the merge plumbing.
        let result = |p: &DesignPoint| PointResult {
            index: p.index as u64,
            game: p.game.name().into(),
            evader: p.evader.name().into(),
            model: p.model.name().into(),
            round: p.round,
            accuracy: 0.5 + p.index as f64 / 1000.0,
            f1: 0.25,
            n_train: 9,
            n_test: 3,
            model_bytes: 1024,
        };
        let single = GridReport::new(points.iter().map(result).collect());
        let shards: Vec<GridReport> = (0..3)
            .map(|s| GridReport::new(partition(&points, s, 3).iter().map(result).collect()))
            .collect();
        let merged = merge(shards).unwrap();
        assert_eq!(merged.to_json(), single.to_json());
    }

    #[test]
    fn merge_names_missing_and_duplicate_indices() {
        let points = spec().points();
        let result = |p: &DesignPoint| PointResult {
            index: p.index as u64,
            game: p.game.name().into(),
            evader: p.evader.name().into(),
            model: p.model.name().into(),
            round: p.round,
            accuracy: 0.5,
            f1: 0.5,
            n_train: 9,
            n_test: 3,
            model_bytes: 0,
        };
        let mut partial: Vec<PointResult> = points.iter().map(result).collect();
        partial.remove(5);
        let err = merge(vec![GridReport::new(partial)]).unwrap_err();
        assert!(err.contains("missing result for grid index 5"), "{err}");

        let mut doubled: Vec<PointResult> = points.iter().map(result).collect();
        doubled.push(result(&points[2]));
        let err = merge(vec![GridReport::new(doubled)]).unwrap_err();
        assert!(err.contains("duplicate result for grid index 2"), "{err}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let points = spec().points();
        let results: Vec<PointResult> = points
            .iter()
            .take(4)
            .map(|p| PointResult::new(p, &GameResult {
                accuracy: 0.8125,
                f1: 0.8,
                n_train: 9,
                n_test: 3,
                model_bytes: 2048,
            }))
            .collect();
        let report = GridReport::new(results);
        let parsed = GridReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        // Idempotent re-serialization: what the merge step relies on for
        // byte-identical outputs.
        assert_eq!(parsed.to_json(), report.to_json());
    }

    #[test]
    fn lookups_resolve_names_and_reject_garbage() {
        assert_eq!(game_by_name("game2").unwrap(), Game::Game2);
        assert!(game_by_name("game9").is_err());
        assert_eq!(evader_by_name("none").unwrap(), Transformer::None);
        assert!(evader_by_name("rot13").is_err());
        assert_eq!(model_by_name("knn").unwrap(), ModelKind::Knn);
        assert!(model_by_name("gpt").is_err());
    }
}
