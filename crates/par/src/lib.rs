//! # yali-par
//!
//! Deterministic scoped-thread parallel primitives.
//!
//! This crate sits below both the experiment engine (`yali-core`) and the
//! model trainers (`yali-ml`), so training loops can fan minibatch
//! gradient work out over the same worker pool the experiment drivers
//! use. Everything here upholds one contract: **the output of a parallel
//! run is byte-identical to the serial run** whenever the mapped closure
//! is a pure function of `(index, item)`. Parallelism only reschedules
//! work; it never re-associates floating-point reductions — callers that
//! need a reduction merge the per-item results in index order themselves.
//!
//! Worker count comes from the `YALI_THREADS` environment variable, or
//! the machine's available parallelism when unset.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads: the `YALI_THREADS` environment variable when
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 when that is unknown).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("YALI_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`worker_count`] scoped threads, preserving
/// input order. `f` receives `(index, &item)`; determinism is the caller's
/// bargain: keep `f` a pure function of its arguments and the output is
/// identical at every thread count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// [`par_map`] with an explicit thread count (tests pin this to compare
/// thread counts without touching the environment).
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Small chunks + an atomic cursor give dynamic load balancing (work
    // sizes vary wildly) while each chunk stays contiguous, so stitching
    // the pieces back in start order restores the serial output exactly.
    let chunk = (n / (threads * 4)).max(1);
    let n_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
        let f = &f;
        let next = &next;
        let handles: Vec<_> = (0..threads.min(n_chunks))
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        let out: Vec<U> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(start + j, t))
                            .collect();
                        local.push((start, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    pieces.sort_unstable_by_key(|p| p.0);
    let mut out = Vec::with_capacity(n);
    for (_, mut v) in pieces {
        out.append(&mut v);
    }
    out
}

/// Applies `f` to every element in place, in parallel. Each worker owns a
/// contiguous sub-slice, so the effect equals the serial loop whenever `f`
/// is a pure function of `(index, element)`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = worker_count();
    if threads <= 1 || n <= 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (j, t) in part.iter_mut().enumerate() {
                    f(ci * chunk + j, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial = par_map_with(1, &items, |i, &v| v * v + i as u64);
        for threads in [2, 3, 8, 32] {
            let parallel = par_map_with(threads, &items, |i, &v| v * v + i as u64);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |i, &v| v + i as u32), vec![7]);
        assert_eq!(
            par_map_with(64, &[1u32, 2], |_, &v| v * 10),
            vec![10, 20],
            "more threads than chunks"
        );
    }

    #[test]
    fn par_for_each_mut_equals_the_serial_loop() {
        let mut a: Vec<usize> = (0..57).collect();
        let mut b = a.clone();
        for (i, t) in a.iter_mut().enumerate() {
            *t = *t * 3 + i;
        }
        par_for_each_mut(&mut b, |i, t| *t = *t * 3 + i);
        assert_eq!(a, b);
    }
}
