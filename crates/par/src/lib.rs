//! # yali-par
//!
//! Deterministic scoped-thread parallel primitives.
//!
//! This crate sits below both the experiment engine (`yali-core`) and the
//! model trainers (`yali-ml`), so training loops can fan minibatch
//! gradient work out over the same worker pool the experiment drivers
//! use. Everything here upholds one contract: **the output of a parallel
//! run is byte-identical to the serial run** whenever the mapped closure
//! is a pure function of `(index, item)`. Parallelism only reschedules
//! work; it never re-associates floating-point reductions — callers that
//! need a reduction merge the per-item results in index order themselves.
//!
//! Worker count comes from the `YALI_THREADS` environment variable, or
//! the machine's available parallelism when unset. A set-but-invalid
//! `YALI_THREADS` (unparsable, or zero) falls back to the machine
//! parallelism **with a warning** through the `yali-obs` event sink —
//! never silently.
//!
//! With `YALI_OBS=1` every parallel [`par_map`] region additionally
//! accounts its workers' busy time against the region's wall time
//! (`par.busy_ns` / `par.worker_ns` in the registry — their ratio is the
//! pool utilization `yali_core::report` puts in `RUNSTATS.json`), and
//! streams one per-region `par_map` event plus one `par_worker` event per
//! worker (carrying the worker's index, start time, and busy nanoseconds)
//! to the `YALI_TRACE` sink — the raw material for `yali-prof`'s
//! busy/idle utilization timeline.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use yali_obs::{EnvVar, WarnOnce};

/// Parses a `YALI_THREADS` value. Surrounding whitespace is tolerated;
/// zero, an empty/blank string, and non-numbers are [`EnvVar::Invalid`].
fn parse_threads(v: Option<&str>) -> EnvVar<usize> {
    match v {
        None => EnvVar::Unset,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => EnvVar::Value(n),
            _ => EnvVar::Invalid,
        },
    }
}

/// Number of worker threads: the `YALI_THREADS` environment variable when
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 when that is unknown). A set-but-invalid value warns
/// once per process (stderr plus the `yali-obs` trace sink) instead of
/// silently falling back.
pub fn worker_count() -> usize {
    static ONCE: WarnOnce = WarnOnce::new();
    yali_obs::env_once(
        "YALI_THREADS",
        &ONCE,
        "is not a positive integer; falling back to the machine's available parallelism",
        parse_threads,
    )
    .unwrap_or_else(machine_parallelism)
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`worker_count`] scoped threads, preserving
/// input order. `f` receives `(index, &item)`; determinism is the caller's
/// bargain: keep `f` a pure function of its arguments and the output is
/// identical at every thread count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(worker_count(), items, f)
}

/// [`par_map`] with an explicit thread count (tests pin this to compare
/// thread counts without touching the environment).
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Small chunks + an atomic cursor give dynamic load balancing (work
    // sizes vary wildly) while each chunk stays contiguous, so stitching
    // the pieces back in start order restores the serial output exactly.
    let chunk = (n / (threads * 4)).max(1);
    let n_chunks = n.div_ceil(chunk);
    let workers = threads.min(n_chunks);
    // Pool accounting (busy-vs-wall per region) is purely additive: it
    // times workers, never reschedules them, so results are unaffected.
    let obs = yali_obs::enabled();
    let region_start = obs.then(Instant::now);
    let region_t0 = (obs && yali_obs::trace_on()).then(yali_obs::epoch_ns);
    let busy_ns = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<U>)> = std::thread::scope(|s| {
        let f = &f;
        let next = &next;
        let busy_ns = &busy_ns;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let worker_start = obs.then(Instant::now);
                    let worker_t0 = (obs && yali_obs::trace_on()).then(yali_obs::epoch_ns);
                    let mut local = Vec::new();
                    let mut worker_items = 0u64;
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        worker_items += (end - start) as u64;
                        let out: Vec<U> = items[start..end]
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(start + j, t))
                            .collect();
                        local.push((start, out));
                    }
                    if let Some(t0) = worker_start {
                        let busy = t0.elapsed().as_nanos() as u64;
                        busy_ns.fetch_add(busy as usize, Ordering::Relaxed);
                        // One per-worker event with the worker's index, so
                        // trace analysis can lay out a busy/idle timeline
                        // per worker rather than one aggregate per region.
                        if let Some(t0_ns) = worker_t0 {
                            yali_obs::trace_region(
                                "par_worker",
                                &[
                                    ("worker", w as u64),
                                    ("t0_ns", t0_ns),
                                    ("busy_ns", busy),
                                    ("items", worker_items),
                                ],
                            );
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    if let Some(t0) = region_start {
        let wall = t0.elapsed().as_nanos() as u64;
        let busy = busy_ns.load(Ordering::Relaxed) as u64;
        yali_obs::count!("par.regions", 1);
        yali_obs::count!("par.items", n as u64);
        yali_obs::count!("par.wall_ns", wall);
        yali_obs::count!("par.busy_ns", busy);
        yali_obs::count!("par.worker_ns", wall * workers as u64);
        yali_obs::trace_region(
            "par_map",
            &[
                ("t0_ns", region_t0.unwrap_or(0)),
                ("wall_ns", wall),
                ("busy_ns", busy),
                ("workers", workers as u64),
                ("items", n as u64),
            ],
        );
    }
    pieces.sort_unstable_by_key(|p| p.0);
    let mut out = Vec::with_capacity(n);
    for (_, mut v) in pieces {
        out.append(&mut v);
    }
    out
}

/// Applies `f` to every element in place, in parallel. Each worker owns a
/// contiguous sub-slice, so the effect equals the serial loop whenever `f`
/// is a pure function of `(index, element)`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = worker_count();
    if threads <= 1 || n <= 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (j, t) in part.iter_mut().enumerate() {
                    f(ci * chunk + j, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial = par_map_with(1, &items, |i, &v| v * v + i as u64);
        for threads in [2, 3, 8, 32] {
            let parallel = par_map_with(threads, &items, |i, &v| v * v + i as u64);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn threads_var_zero_is_invalid_not_a_silent_fallback() {
        assert_eq!(parse_threads(Some("0")), EnvVar::Invalid);
    }

    #[test]
    fn threads_var_garbage_is_invalid() {
        assert_eq!(parse_threads(Some("abc")), EnvVar::Invalid);
        assert_eq!(parse_threads(Some("-3")), EnvVar::Invalid);
        assert_eq!(parse_threads(Some("4x")), EnvVar::Invalid);
    }

    #[test]
    fn threads_var_whitespace_cases() {
        // Pure whitespace is invalid; whitespace around a number is fine.
        assert_eq!(parse_threads(Some("   ")), EnvVar::Invalid);
        assert_eq!(parse_threads(Some("")), EnvVar::Invalid);
        assert_eq!(parse_threads(Some(" 8 ")), EnvVar::Value(8));
        assert_eq!(parse_threads(Some("\t4\n")), EnvVar::Value(4));
    }

    #[test]
    fn threads_var_valid_and_unset() {
        assert_eq!(parse_threads(Some("1")), EnvVar::Value(1));
        assert_eq!(parse_threads(Some("16")), EnvVar::Value(16));
        assert_eq!(parse_threads(None), EnvVar::<usize>::Unset);
    }

    #[test]
    fn par_map_accounts_pool_time_when_obs_is_on() {
        yali_obs::set_enabled(true);
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_with(4, &items, |i, &v| {
            std::hint::black_box(v.wrapping_mul(0x9E37_79B9).rotate_left(i as u32))
        });
        yali_obs::set_enabled(false);
        assert_eq!(out.len(), 64);
        let counters = yali_obs::Registry::global().counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert!(get("par.regions") >= 1);
        assert!(get("par.items") >= 64);
        assert!(get("par.worker_ns") >= get("par.busy_ns"));
        assert!(get("par.busy_ns") > 0);
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |i, &v| v + i as u32), vec![7]);
        assert_eq!(
            par_map_with(64, &[1u32, 2], |_, &v| v * 10),
            vec![10, 20],
            "more threads than chunks"
        );
    }

    #[test]
    fn par_for_each_mut_equals_the_serial_loop() {
        let mut a: Vec<usize> = (0..57).collect();
        let mut b = a.clone();
        for (i, t) in a.iter_mut().enumerate() {
            *t = *t * 3 + i;
        }
        par_for_each_mut(&mut b, |i, t| *t = *t * 3 + i);
        assert_eq!(a, b);
    }
}
